//! The newline-delimited wire protocol between clients and the server.
//!
//! One request or response per line, tokens separated by single spaces,
//! operands and sums as bare lowercase hex (the [`UBig`] `{:x}` /
//! [`UBig::from_hex`] pair). Requests carry a client-chosen sequence
//! number because the batching window is free to complete requests out of
//! submission order — two requests from one connection that land in
//! different issue groups finish whenever their groups do — so every
//! response names the request it answers.
//!
//! ```text
//! client → server
//!   ADD <seq> <engine> <width> <a-hex> <b-hex>    one addition request
//!   SUM <seq> <engine> <width> <n> <hex>…         one n-operand reduction
//!   PROG <seq> <engine> <width> <n> <spec> <hex>… one dataflow program
//!   ENGINES                                       list known engine names
//!   STATS                                         service counters snapshot
//!   SLO [<micros>|off]                            query / set / clear the p99 budget
//!
//! server → client
//!   OK <seq> <sum-hex> <cout:0|1> <cycles>        the lane's exact result
//!   ERR <seq> <code> <message…>                   per-request failure
//!   ENGINES <name> <name> …                       the registry's names
//!   STATS <k>=<v> … engine=<name>:<lanes>:<stalls>:<groups> …   one-line snapshot
//!   SLO <micros>|off                              the budget after the command
//! ```
//!
//! `SUM` carries a whole multi-operand reduction in one request: the
//! server compresses the operands carry-save style
//! ([`Program::csa_pair_scalar`]) and the one remaining carry-resolve
//! rides the batching window as a **single lane** of the named engine —
//! the response's `cycles` are that one resolve's, and its `cout` is the
//! resolve's carry out. `PROG` generalizes `SUM` to any add-DAG over
//! named temporaries, with the program shape in [`Program::from_spec`]
//! syntax as one comma-separated token (`i0+i1,t0+i2` is `SUM` of 3);
//! `n` is the operand count in both forms, capped at
//! [`MAX_PROGRAM_INPUTS`].
//!
//! `STATS` answers with a **single line** of `key=value` tokens — queue
//! depth, batching-window occupancy (pending lanes and the window bound),
//! the slab word width, the SLO budget (`slo=<micros>` or `slo=off`),
//! per-protocol request counters (`proto_text=<n> proto_bin=<n>`: lines
//! and frames the connection handlers have answered, across the text
//! protocol and the binary framing of [`crate::binary`]), the live lane
//! count (`lanes_total=<n>`, with one
//! `lane=<engine>:<width>:depth=<n>:occupancy=<n>` token per
//! `(engine, width)` worker lane traffic has spun up — the global
//! `queue_depth`/`window_lanes` are the sums of the per-lane gauges) —
//! followed by one `engine=<name>:<lanes>:<stalls>:<groups>` token per engine that
//! has served traffic, from which per-engine stall rates derive
//! (`stalls / lanes`), and one `route=<width>:<engine>:<ok|degraded>`
//! token per width the `auto` router has decided for (the engine the last
//! `auto` group at that width ran on, and whether the SLO forced a
//! fixed-latency fallback).
//!
//! Requests may name the engine `auto` to delegate the choice to the
//! server's router ([`vlcsa::route`]); `SLO <micros>` sets the p99 budget
//! that router degrades under, `SLO off` clears it, bare `SLO` queries it.
//!
//! A malformed line that does not yield a sequence number is answered with
//! `ERR 0 bad-request …`; protocol errors never drop the connection.
//!
//! # Example
//!
//! ```
//! use bitnum::UBig;
//! use vlcsa_serve::protocol::{parse_request, Request};
//!
//! let req = parse_request("ADD 7 vlcsa1 64 1f 3").unwrap();
//! match req {
//!     Request::Add { seq, engine, width, a, b } => {
//!         assert_eq!((seq, engine.as_str(), width), (7, "vlcsa1", 64));
//!         assert_eq!(a.to_u128(), Some(0x1f));
//!         assert_eq!(b.to_u128(), Some(3));
//!     }
//!     _ => unreachable!(),
//! }
//! ```

use bitnum::UBig;
use vlcsa::program::{Program, MAX_PROGRAM_INPUTS};
use vlcsa::route::RouteStat;

/// Widths a request may name: at least 1 bit, at most
/// [`bitnum::MAX_WIDTH`].
pub const WIDTH_RANGE: std::ops::RangeInclusive<usize> = 1..=bitnum::MAX_WIDTH;

/// Operand counts a `SUM`/`PROG` request may name.
pub const OPERAND_RANGE: std::ops::RangeInclusive<usize> = 1..=MAX_PROGRAM_INPUTS;

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `ADD <seq> <engine> <width> <a-hex> <b-hex>`.
    Add {
        /// Client-chosen sequence number, echoed in the response.
        seq: u64,
        /// Engine display name (a [`Registry`](vlcsa::engine::Registry) name).
        engine: String,
        /// Operand width in bits.
        width: usize,
        /// First operand.
        a: UBig,
        /// Second operand.
        b: UBig,
    },
    /// `SUM <seq> <engine> <width> <n> <hex>…` — one n-operand reduction,
    /// resolved with a single carry-propagate pass.
    Sum {
        /// Client-chosen sequence number, echoed in the response.
        seq: u64,
        /// Engine display name (a [`Registry`](vlcsa::engine::Registry) name).
        engine: String,
        /// Operand width in bits.
        width: usize,
        /// The operands, in wire order (1..=[`MAX_PROGRAM_INPUTS`]).
        operands: Vec<UBig>,
    },
    /// `PROG <seq> <engine> <width> <n> <spec> <hex>…` — one dataflow
    /// program over `n` inputs, spec in [`Program::from_spec`] syntax.
    Program {
        /// Client-chosen sequence number, echoed in the response.
        seq: u64,
        /// Engine display name (a [`Registry`](vlcsa::engine::Registry) name).
        engine: String,
        /// Operand width in bits.
        width: usize,
        /// The parsed, validated program shape.
        program: Program,
        /// The program's inputs, in wire order.
        inputs: Vec<UBig>,
    },
    /// `ENGINES` — list the registry's engine names.
    Engines,
    /// `STATS` — snapshot the service counters.
    Stats,
    /// `SLO` / `SLO <micros>` / `SLO off` — query or change the p99
    /// latency budget the `auto` router degrades under.
    Slo(SloAction),
}

/// What an `SLO` request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloAction {
    /// Bare `SLO`: report the current budget without changing it.
    Query,
    /// `SLO <micros>`: set the budget (micros ≥ 1).
    Set(u64),
    /// `SLO off`: clear the budget (the router never degrades).
    Clear,
}

/// Machine-readable failure classes of an `ERR` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line did not parse as any request.
    BadRequest,
    /// The engine name is not in the registry (the message lists the
    /// known names, via
    /// [`EngineLookupError`](vlcsa::engine::EngineLookupError)).
    UnknownEngine,
    /// The width is outside [`WIDTH_RANGE`].
    BadWidth,
    /// An operand was not valid hex or did not fit the width.
    BadOperand,
    /// The server is shutting down and did not run the request.
    Shutdown,
}

impl ErrorCode {
    /// The kebab-case wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownEngine => "unknown-engine",
            ErrorCode::BadWidth => "bad-width",
            ErrorCode::BadOperand => "bad-operand",
            ErrorCode::Shutdown => "shutdown",
        }
    }

    /// Parses a wire token back into a code.
    pub fn from_str_token(s: &str) -> Option<Self> {
        Some(match s {
            "bad-request" => ErrorCode::BadRequest,
            "unknown-engine" => ErrorCode::UnknownEngine,
            "bad-width" => ErrorCode::BadWidth,
            "bad-operand" => ErrorCode::BadOperand,
            "shutdown" => ErrorCode::Shutdown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A request-level failure: the code, the offending sequence number and a
/// human-readable message. `seq` is 0 when the line was too malformed to
/// carry one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Sequence number the failure answers (0 if unparseable).
    pub seq: u64,
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail (single line).
    pub message: String,
}

impl RequestError {
    fn new(seq: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            seq,
            code,
            message: message.into(),
        }
    }
}

/// The `<seq> <engine> <width>` prefix every computing request starts
/// with, parsed with the command name in the error messages.
fn parse_head<'a>(
    cmd: &str,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<(u64, String, usize), RequestError> {
    let seq = tokens
        .next()
        .and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| {
            RequestError::new(
                0,
                ErrorCode::BadRequest,
                format!("{cmd} needs a numeric sequence"),
            )
        })?;
    let engine = tokens
        .next()
        .ok_or_else(|| {
            RequestError::new(
                seq,
                ErrorCode::BadRequest,
                format!("{cmd} is missing the engine"),
            )
        })?
        .to_string();
    let width = tokens
        .next()
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| {
            RequestError::new(
                seq,
                ErrorCode::BadRequest,
                format!("{cmd} needs a numeric width"),
            )
        })?;
    if !WIDTH_RANGE.contains(&width) {
        return Err(RequestError::new(
            seq,
            ErrorCode::BadWidth,
            format!(
                "width {width} outside {}..={}",
                WIDTH_RANGE.start(),
                WIDTH_RANGE.end()
            ),
        ));
    }
    Ok((seq, engine, width))
}

/// The `<n>` operand count of a `SUM`/`PROG` line, bounds-checked against
/// [`OPERAND_RANGE`].
fn parse_operand_count<'a>(
    cmd: &str,
    seq: u64,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<usize, RequestError> {
    let n = tokens
        .next()
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| {
            RequestError::new(
                seq,
                ErrorCode::BadRequest,
                format!("{cmd} needs a numeric operand count"),
            )
        })?;
    if !OPERAND_RANGE.contains(&n) {
        return Err(RequestError::new(
            seq,
            ErrorCode::BadRequest,
            format!(
                "operand count {n} outside {}..={}",
                OPERAND_RANGE.start(),
                OPERAND_RANGE.end()
            ),
        ));
    }
    Ok(n)
}

/// Exactly `n` hex operands at `width`, then end of line.
fn parse_operands<'a>(
    cmd: &str,
    seq: u64,
    width: usize,
    n: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<Vec<UBig>, RequestError> {
    let mut operands = Vec::with_capacity(n);
    for k in 0..n {
        let token = tokens.next().ok_or_else(|| {
            RequestError::new(
                seq,
                ErrorCode::BadRequest,
                format!("{cmd} is missing operand {k} of {n}"),
            )
        })?;
        operands.push(UBig::from_hex(token, width).map_err(|e| {
            RequestError::new(seq, ErrorCode::BadOperand, format!("operand {k}: {e}"))
        })?);
    }
    if let Some(extra) = tokens.next() {
        return Err(RequestError::new(
            seq,
            ErrorCode::BadRequest,
            format!("trailing token `{extra}`"),
        ));
    }
    Ok(operands)
}

/// Parses one request line.
///
/// # Errors
///
/// Returns the [`RequestError`] to answer with; the connection stays up.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let mut tokens = line.split_ascii_whitespace();
    match tokens.next() {
        Some("ENGINES") => match tokens.next() {
            None => Ok(Request::Engines),
            Some(extra) => Err(RequestError::new(
                0,
                ErrorCode::BadRequest,
                format!("ENGINES takes no arguments, got `{extra}`"),
            )),
        },
        Some("STATS") => match tokens.next() {
            None => Ok(Request::Stats),
            Some(extra) => Err(RequestError::new(
                0,
                ErrorCode::BadRequest,
                format!("STATS takes no arguments, got `{extra}`"),
            )),
        },
        Some("SLO") => {
            let action = match tokens.next() {
                None => SloAction::Query,
                Some("off") => SloAction::Clear,
                Some(arg) => match arg.parse::<u64>() {
                    Ok(micros) if micros >= 1 => SloAction::Set(micros),
                    _ => {
                        return Err(RequestError::new(
                            0,
                            ErrorCode::BadRequest,
                            format!("SLO takes a budget in micros (>= 1) or `off`, got `{arg}`"),
                        ))
                    }
                },
            };
            if let Some(extra) = tokens.next() {
                return Err(RequestError::new(
                    0,
                    ErrorCode::BadRequest,
                    format!("SLO takes one argument, got trailing `{extra}`"),
                ));
            }
            Ok(Request::Slo(action))
        }
        Some("ADD") => {
            let (seq, engine, width) = parse_head("ADD", &mut tokens)?;
            let mut operands = parse_operands("ADD", seq, width, 2, &mut tokens)?;
            let b = operands.pop().expect("two operands");
            let a = operands.pop().expect("two operands");
            Ok(Request::Add {
                seq,
                engine,
                width,
                a,
                b,
            })
        }
        Some("SUM") => {
            let (seq, engine, width) = parse_head("SUM", &mut tokens)?;
            let n = parse_operand_count("SUM", seq, &mut tokens)?;
            let operands = parse_operands("SUM", seq, width, n, &mut tokens)?;
            Ok(Request::Sum {
                seq,
                engine,
                width,
                operands,
            })
        }
        Some("PROG") => {
            let (seq, engine, width) = parse_head("PROG", &mut tokens)?;
            let n = parse_operand_count("PROG", seq, &mut tokens)?;
            let spec = tokens.next().ok_or_else(|| {
                RequestError::new(seq, ErrorCode::BadRequest, "PROG is missing the spec")
            })?;
            let program = Program::from_spec(spec, n).map_err(|e| {
                RequestError::new(seq, ErrorCode::BadRequest, format!("program spec: {e}"))
            })?;
            let inputs = parse_operands("PROG", seq, width, n, &mut tokens)?;
            Ok(Request::Program {
                seq,
                engine,
                width,
                program,
                inputs,
            })
        }
        Some(other) => Err(RequestError::new(
            0,
            ErrorCode::BadRequest,
            format!("unknown command `{other}`"),
        )),
        None => Err(RequestError::new(0, ErrorCode::BadRequest, "empty line")),
    }
}

/// Formats an `ADD` request line (no trailing newline).
pub fn format_add(seq: u64, engine: &str, a: &UBig, b: &UBig) -> String {
    format!("ADD {seq} {engine} {} {a:x} {b:x}", a.width())
}

/// Formats a `SUM` request line (no trailing newline).
///
/// # Panics
///
/// Panics if `operands` is empty (the width comes from the first one).
pub fn format_sum(seq: u64, engine: &str, operands: &[UBig]) -> String {
    let mut line = format!(
        "SUM {seq} {engine} {} {}",
        operands[0].width(),
        operands.len()
    );
    for op in operands {
        line.push_str(&format!(" {op:x}"));
    }
    line
}

/// Formats a `PROG` request line (no trailing newline).
///
/// # Panics
///
/// Panics if `inputs` is empty or `program` has no steps — a step-less
/// program's spec is the empty string, which is not a wire token.
pub fn format_program(seq: u64, engine: &str, program: &Program, inputs: &[UBig]) -> String {
    assert!(
        !program.steps().is_empty(),
        "a wire program needs at least one step"
    );
    let mut line = format!(
        "PROG {seq} {engine} {} {} {}",
        inputs[0].width(),
        inputs.len(),
        program.spec()
    );
    for op in inputs {
        line.push_str(&format!(" {op:x}"));
    }
    line
}

/// Lifetime lane/stall counters of one engine, as served traffic saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// Engine display name.
    pub name: String,
    /// Lanes (requests) this engine has answered.
    pub lanes: u64,
    /// Lanes that took the 2-cycle recovery path.
    pub stalls: u64,
    /// Issue groups (batches) this engine has run.
    pub groups: u64,
}

impl EngineStats {
    /// Fraction of served lanes that stalled (0 when nothing served).
    pub fn stall_rate(&self) -> f64 {
        if self.lanes == 0 {
            0.0
        } else {
            self.stalls as f64 / self.lanes as f64
        }
    }
}

/// One serve lane's live gauges: the `(engine, width)` pair it runs, its
/// ingress queue depth and its open batching-window occupancy — the
/// `lane=<engine>:<width>:depth=<n>:occupancy=<n>` token of `STATS`.
///
/// Lanes are created on demand by traffic, so an idle server reports
/// none; the global `queue_depth`/`window_lanes` scalars are the sums of
/// these per-lane gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStats {
    /// The engine this lane runs (`auto` is resolved before lanes, so
    /// this is always a concrete name).
    pub engine: String,
    /// The operand width this lane batches.
    pub width: usize,
    /// Requests queued in the lane's sharded ingress, ahead of its
    /// batcher.
    pub depth: usize,
    /// Lanes pending in the lane's open batching window.
    pub occupancy: usize,
}

/// The `STATS` snapshot: queue depth, batching-window occupancy, the slab
/// word width, the SLO budget, per-lane gauges, per-engine stall counters
/// and the `auto` router's current route per width — everything the
/// single response line carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReport {
    /// Requests currently queued ahead of the batcher.
    pub queue_depth: usize,
    /// Lanes pending in the open batching window.
    pub window_lanes: usize,
    /// The window's flush bound (`ServeConfig::max_lanes`).
    pub max_lanes: usize,
    /// Lane width of the slab word the engines run on (64 or 256).
    pub word_bits: usize,
    /// The p99 budget the `auto` router degrades under (`None` = off).
    pub slo_micros: Option<u64>,
    /// Text-protocol requests the connection handlers have answered
    /// (every non-empty line, malformed ones included).
    pub proto_text: u64,
    /// Binary-protocol requests answered (every frame the server replied
    /// to; the `HELLO` upgrade line itself counts as neither).
    pub proto_bin: u64,
    /// Per-lane live gauges, in lane-creation order — empty on an idle
    /// server (lanes spin up on demand). `queue_depth` and `window_lanes`
    /// are the sums of the per-lane `depth` and `occupancy`.
    pub lanes: Vec<LaneStats>,
    /// Per-engine counters, in first-served order.
    pub engines: Vec<EngineStats>,
    /// The router's last decision per width, ascending by width — absent
    /// for widths that have never seen `auto` traffic.
    pub routes: Vec<RouteStat>,
}

impl StatsReport {
    /// Batching-window occupancy: pending lanes over the flush bound
    /// (0 when the bound is unknown, rather than NaN).
    pub fn window_occupancy(&self) -> f64 {
        if self.max_lanes == 0 {
            0.0
        } else {
            self.window_lanes as f64 / self.max_lanes as f64
        }
    }

    /// The counters of one engine, if it has served traffic.
    pub fn engine(&self, name: &str) -> Option<&EngineStats> {
        self.engines.iter().find(|e| e.name == name)
    }

    /// The live gauges of one `(engine, width)` lane, if traffic has spun
    /// it up.
    pub fn lane(&self, engine: &str, width: usize) -> Option<&LaneStats> {
        self.lanes
            .iter()
            .find(|l| l.engine == engine && l.width == width)
    }

    /// Total lanes served across every engine.
    pub fn total_lanes(&self) -> u64 {
        self.engines.iter().map(|e| e.lanes).sum()
    }

    /// Total stalled lanes across every engine.
    pub fn total_stalls(&self) -> u64 {
        self.engines.iter().map(|e| e.stalls).sum()
    }

    /// Total issue groups (batches) run across every engine.
    pub fn total_groups(&self) -> u64 {
        self.engines.iter().map(|e| e.groups).sum()
    }
}

/// One parsed server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `OK <seq> <sum-hex> <cout> <cycles>`.
    Ok {
        /// Echoed request sequence number.
        seq: u64,
        /// The exact sum, at the request's width.
        sum: UBig,
        /// Carry out of the most significant bit.
        cout: bool,
        /// Cycles the lane consumed (1, or 2 after a recovery stall).
        cycles: u8,
    },
    /// `ERR <seq> <code> <message…>`.
    Err(RequestError),
    /// `ENGINES <name> …`.
    Engines(Vec<String>),
    /// `STATS <k>=<v> …` — the one-line counters snapshot.
    Stats(StatsReport),
    /// `SLO <micros>|off` — the budget in force after an `SLO` command.
    Slo(Option<u64>),
}

/// Formats a response line (no trailing newline). `Ok` needs no width on
/// the wire: the client parses the sum at the width it asked for.
pub fn format_response(response: &Response) -> String {
    match response {
        Response::Ok {
            seq,
            sum,
            cout,
            cycles,
        } => format!("OK {seq} {sum:x} {} {cycles}", u8::from(*cout)),
        Response::Err(e) => format!("ERR {} {} {}", e.seq, e.code, e.message),
        Response::Engines(names) => {
            let mut line = String::from("ENGINES");
            for name in names {
                line.push(' ');
                line.push_str(name);
            }
            line
        }
        Response::Stats(stats) => {
            let mut line = format!(
                "STATS queue_depth={} window_lanes={} max_lanes={} word_bits={} slo={} \
                 proto_text={} proto_bin={} lanes_total={}",
                stats.queue_depth,
                stats.window_lanes,
                stats.max_lanes,
                stats.word_bits,
                stats
                    .slo_micros
                    .map_or_else(|| "off".to_string(), |m| m.to_string()),
                stats.proto_text,
                stats.proto_bin,
                stats.lanes.len(),
            );
            for l in &stats.lanes {
                line.push_str(&format!(
                    " lane={}:{}:depth={}:occupancy={}",
                    l.engine, l.width, l.depth, l.occupancy
                ));
            }
            for e in &stats.engines {
                line.push_str(&format!(
                    " engine={}:{}:{}:{}",
                    e.name, e.lanes, e.stalls, e.groups
                ));
            }
            for r in &stats.routes {
                line.push_str(&format!(
                    " route={}:{}:{}",
                    r.width,
                    r.engine,
                    if r.degraded { "degraded" } else { "ok" }
                ));
            }
            line
        }
        Response::Slo(budget) => match budget {
            Some(micros) => format!("SLO {micros}"),
            None => "SLO off".to_string(),
        },
    }
}

/// Parses one response line on the client side. `width` is the width of
/// the request the caller is matching responses against (used to parse the
/// sum of an `OK`).
///
/// # Errors
///
/// Returns a description of the malformed line.
pub fn parse_response(line: &str, width: usize) -> Result<Response, String> {
    let mut tokens = line.split_ascii_whitespace();
    match tokens.next() {
        Some("OK") => {
            let mut next =
                |name: &str| tokens.next().ok_or_else(|| format!("OK is missing {name}"));
            let seq = next("seq")?
                .parse::<u64>()
                .map_err(|e| format!("OK seq: {e}"))?;
            let sum = UBig::from_hex(next("sum")?, width).map_err(|e| format!("OK sum: {e}"))?;
            let cout = match next("cout")? {
                "0" => false,
                "1" => true,
                other => return Err(format!("OK cout must be 0|1, got `{other}`")),
            };
            let cycles = next("cycles")?
                .parse::<u8>()
                .map_err(|e| format!("OK cycles: {e}"))?;
            Ok(Response::Ok {
                seq,
                sum,
                cout,
                cycles,
            })
        }
        Some("ERR") => {
            let seq = tokens
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or("ERR needs a numeric seq")?;
            let code = tokens
                .next()
                .and_then(ErrorCode::from_str_token)
                .ok_or("ERR needs a known code")?;
            let message = tokens.collect::<Vec<_>>().join(" ");
            Ok(Response::Err(RequestError { seq, code, message }))
        }
        Some("ENGINES") => Ok(Response::Engines(tokens.map(str::to_string).collect())),
        Some("STATS") => {
            let mut stats = StatsReport {
                queue_depth: 0,
                window_lanes: 0,
                max_lanes: 0,
                word_bits: 0,
                slo_micros: None,
                proto_text: 0,
                proto_bin: 0,
                lanes: Vec::new(),
                engines: Vec::new(),
                routes: Vec::new(),
            };
            // Every scalar key is mandatory: a truncated line must fail
            // loudly, not parse as an idle snapshot.
            let (mut have_queue, mut have_window, mut have_max, mut have_word, mut have_slo) =
                (false, false, false, false, false);
            let (mut have_ptext, mut have_pbin) = (false, false);
            let mut lanes_total: Option<usize> = None;
            for token in tokens {
                let (key, value) = token
                    .split_once('=')
                    .ok_or_else(|| format!("STATS token `{token}` is not key=value"))?;
                let number = |v: &str| v.parse::<usize>().map_err(|e| format!("STATS {key}: {e}"));
                match key {
                    "queue_depth" => {
                        stats.queue_depth = number(value)?;
                        have_queue = true;
                    }
                    "window_lanes" => {
                        stats.window_lanes = number(value)?;
                        have_window = true;
                    }
                    "max_lanes" => {
                        stats.max_lanes = number(value)?;
                        have_max = true;
                    }
                    "word_bits" => {
                        stats.word_bits = number(value)?;
                        have_word = true;
                    }
                    "slo" => {
                        stats.slo_micros = match value {
                            "off" => None,
                            micros => Some(
                                micros
                                    .parse::<u64>()
                                    .map_err(|e| format!("STATS slo: {e}"))?,
                            ),
                        };
                        have_slo = true;
                    }
                    "proto_text" => {
                        stats.proto_text = value
                            .parse::<u64>()
                            .map_err(|e| format!("STATS proto_text: {e}"))?;
                        have_ptext = true;
                    }
                    "proto_bin" => {
                        stats.proto_bin = value
                            .parse::<u64>()
                            .map_err(|e| format!("STATS proto_bin: {e}"))?;
                        have_pbin = true;
                    }
                    "lanes_total" => {
                        lanes_total = Some(number(value)?);
                    }
                    "lane" => {
                        let mut parts = value.splitn(4, ':');
                        let engine = parts
                            .next()
                            .filter(|e| !e.is_empty())
                            .ok_or_else(|| format!("STATS lane `{value}` has no engine"))?;
                        let width = parts
                            .next()
                            .and_then(|w| w.parse::<usize>().ok())
                            .ok_or_else(|| format!("STATS lane `{value}` has no width"))?;
                        let gauge = |part: Option<&str>, name: &str| {
                            part.and_then(|p| p.strip_prefix(&format!("{name}=")))
                                .and_then(|p| p.parse::<usize>().ok())
                                .ok_or_else(|| format!("STATS lane `{value}` is missing {name}="))
                        };
                        let depth = gauge(parts.next(), "depth")?;
                        let occupancy = gauge(parts.next(), "occupancy")?;
                        stats.lanes.push(LaneStats {
                            engine: engine.to_string(),
                            width,
                            depth,
                            occupancy,
                        });
                    }
                    "route" => {
                        let mut parts = value.splitn(3, ':');
                        let width = parts
                            .next()
                            .and_then(|w| w.parse::<usize>().ok())
                            .ok_or_else(|| format!("STATS route `{value}` has no width"))?;
                        let engine = parts
                            .next()
                            .filter(|e| !e.is_empty())
                            .ok_or_else(|| format!("STATS route `{value}` has no engine"))?;
                        let degraded = match parts.next() {
                            Some("ok") => false,
                            Some("degraded") => true,
                            _ => {
                                return Err(format!(
                                    "STATS route `{value}` needs an ok|degraded state"
                                ))
                            }
                        };
                        stats.routes.push(RouteStat {
                            width,
                            engine: engine.to_string(),
                            degraded,
                        });
                    }
                    "engine" => {
                        let mut parts = value.split(':');
                        let name = parts
                            .next()
                            .filter(|n| !n.is_empty())
                            .ok_or_else(|| format!("STATS engine `{value}` has no name"))?;
                        let count = |part: Option<&str>| {
                            part.and_then(|p| p.parse::<u64>().ok())
                                .ok_or_else(|| format!("STATS engine `{value}` is malformed"))
                        };
                        let lanes = count(parts.next())?;
                        let stalls = count(parts.next())?;
                        let groups = count(parts.next())?;
                        if parts.next().is_some() {
                            return Err(format!("STATS engine `{value}` has trailing fields"));
                        }
                        stats.engines.push(EngineStats {
                            name: name.to_string(),
                            lanes,
                            stalls,
                            groups,
                        });
                    }
                    other => return Err(format!("STATS has unknown key `{other}`")),
                }
            }
            if !(have_queue && have_window && have_max && have_word && have_slo)
                || !(have_ptext && have_pbin)
            {
                return Err("STATS is missing a mandatory key".into());
            }
            match lanes_total {
                // v4-era lines had no lane gauges at all.
                None => return Err("STATS is missing a mandatory key".into()),
                Some(total) if total != stats.lanes.len() => {
                    return Err(format!(
                        "STATS lanes_total={} but {} lane tokens",
                        total,
                        stats.lanes.len()
                    ))
                }
                Some(_) => {}
            }
            Ok(Response::Stats(stats))
        }
        Some("SLO") => match (tokens.next(), tokens.next()) {
            (Some("off"), None) => Ok(Response::Slo(None)),
            (Some(micros), None) => micros
                .parse::<u64>()
                .map(|m| Response::Slo(Some(m)))
                .map_err(|e| format!("SLO budget: {e}")),
            (None, _) => Err("SLO response is missing the budget".into()),
            (_, Some(extra)) => Err(format!("SLO response has trailing `{extra}`")),
        },
        Some(other) => Err(format!("unknown response `{other}`")),
        None => Err("empty response line".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_roundtrip() {
        let a = UBig::from_u128(0xdead_beef, 64);
        let b = UBig::from_u128(0x1234, 64);
        let line = format_add(42, "carry-select", &a, &b);
        assert_eq!(line, "ADD 42 carry-select 64 deadbeef 1234");
        match parse_request(&line).unwrap() {
            Request::Add {
                seq,
                engine,
                width,
                a: pa,
                b: pb,
            } => {
                assert_eq!(seq, 42);
                assert_eq!(engine, "carry-select");
                assert_eq!(width, 64);
                assert_eq!(pa, a);
                assert_eq!(pb, b);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn sum_roundtrip() {
        let operands: Vec<UBig> = [0xdeadu128, 0xbeef, 0x7, 0x1234]
            .iter()
            .map(|&v| UBig::from_u128(v, 48))
            .collect();
        let line = format_sum(9, "vlcsa1", &operands);
        assert_eq!(line, "SUM 9 vlcsa1 48 4 dead beef 7 1234");
        match parse_request(&line).unwrap() {
            Request::Sum {
                seq,
                engine,
                width,
                operands: parsed,
            } => {
                assert_eq!((seq, engine.as_str(), width), (9, "vlcsa1", 48));
                assert_eq!(parsed, operands);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn program_roundtrip() {
        let program = Program::from_spec("i0+i1,t0+t0,t1+i2", 3).unwrap();
        let inputs: Vec<UBig> = [5u128, 6, 7]
            .iter()
            .map(|&v| UBig::from_u128(v, 16))
            .collect();
        let line = format_program(3, "ripple", &program, &inputs);
        assert_eq!(line, "PROG 3 ripple 16 3 i0+i1,t0+t0,t1+i2 5 6 7");
        match parse_request(&line).unwrap() {
            Request::Program {
                seq,
                engine,
                width,
                program: parsed,
                inputs: parsed_inputs,
            } => {
                assert_eq!((seq, engine.as_str(), width), (3, "ripple", 16));
                assert_eq!(parsed, program);
                assert_eq!(parsed_inputs, inputs);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn malformed_reductions_fail_with_codes_not_panics() {
        for (line, code, seq) in [
            ("SUM", ErrorCode::BadRequest, 0),
            ("SUM x ripple 8 2 1 2", ErrorCode::BadRequest, 0),
            ("SUM 5 ripple 8", ErrorCode::BadRequest, 5),
            ("SUM 5 ripple 8 two 1 2", ErrorCode::BadRequest, 5),
            ("SUM 5 ripple 0 2 1 2", ErrorCode::BadWidth, 5),
            ("SUM 5 ripple 8 0", ErrorCode::BadRequest, 5),
            ("SUM 5 ripple 8 65", ErrorCode::BadRequest, 5), // over the cap
            ("SUM 5 ripple 8 3 1 2", ErrorCode::BadRequest, 5), // short
            ("SUM 5 ripple 8 2 1 2 3", ErrorCode::BadRequest, 5), // long
            ("SUM 5 ripple 8 2 1 xyz", ErrorCode::BadOperand, 5),
            ("SUM 5 ripple 8 2 fff 2", ErrorCode::BadOperand, 5), // overflow
            ("PROG", ErrorCode::BadRequest, 0),
            ("PROG 5 ripple 8 2", ErrorCode::BadRequest, 5), // no spec
            ("PROG 5 ripple 8 2 i0-i1 1 2", ErrorCode::BadRequest, 5),
            ("PROG 5 ripple 8 2 t0+i0 1 2", ErrorCode::BadRequest, 5), // fwd ref
            ("PROG 5 ripple 8 2 i0+i9 1 2", ErrorCode::BadRequest, 5),
            ("PROG 5 ripple 8 2 i0+i1 1", ErrorCode::BadRequest, 5),
            ("PROG 5 ripple 8 2 i0+i1 1 2 3", ErrorCode::BadRequest, 5),
            ("PROG 5 ripple 8 2 i0+i1 1 zz", ErrorCode::BadOperand, 5),
        ] {
            let err = parse_request(line).err().unwrap_or_else(|| {
                panic!("`{line}` parsed");
            });
            assert_eq!(err.code, code, "`{line}` → {err:?}");
            assert_eq!(err.seq, seq, "`{line}` → {err:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let sum = UBig::from_u128(0xffff_0001, 48);
        for response in [
            Response::Ok {
                seq: 9,
                sum,
                cout: true,
                cycles: 2,
            },
            Response::Err(RequestError {
                seq: 3,
                code: ErrorCode::UnknownEngine,
                message: "unknown engine `x`; known engines: ripple, cla4".into(),
            }),
            Response::Engines(vec!["ripple".into(), "vlcsa1".into()]),
        ] {
            let line = format_response(&response);
            assert_eq!(parse_response(&line, 48).unwrap(), response, "{line}");
        }
    }

    #[test]
    fn malformed_requests_fail_with_codes_not_panics() {
        for (line, code, seq) in [
            ("", ErrorCode::BadRequest, 0),
            ("HELLO", ErrorCode::BadRequest, 0),
            ("ADD", ErrorCode::BadRequest, 0),
            ("ADD x ripple 8 1 2", ErrorCode::BadRequest, 0),
            ("ADD 5 ripple", ErrorCode::BadRequest, 5),
            ("ADD 5 ripple eight 1 2", ErrorCode::BadRequest, 5),
            ("ADD 5 ripple 0 1 2", ErrorCode::BadWidth, 5),
            ("ADD 5 ripple 5000 1 2", ErrorCode::BadWidth, 5),
            ("ADD 5 ripple 8 xyz 2", ErrorCode::BadOperand, 5),
            ("ADD 5 ripple 8 fff 2", ErrorCode::BadOperand, 5), // overflow
            ("ADD 5 ripple 8 1 2 3", ErrorCode::BadRequest, 5),
            ("ENGINES now", ErrorCode::BadRequest, 0),
        ] {
            let err = parse_request(line).err().unwrap_or_else(|| {
                panic!("`{line}` parsed");
            });
            assert_eq!(err.code, code, "`{line}` → {err:?}");
            assert_eq!(err.seq, seq, "`{line}` → {err:?}");
        }
    }

    #[test]
    fn engines_request_parses() {
        assert_eq!(parse_request("ENGINES").unwrap(), Request::Engines);
        assert_eq!(parse_request("  ENGINES  ").unwrap(), Request::Engines);
    }

    #[test]
    fn stats_request_parses() {
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(
            parse_request("STATS now").err().unwrap().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn slo_request_parses_query_set_and_clear() {
        assert_eq!(
            parse_request("SLO").unwrap(),
            Request::Slo(SloAction::Query)
        );
        assert_eq!(
            parse_request("SLO 2500").unwrap(),
            Request::Slo(SloAction::Set(2500))
        );
        assert_eq!(
            parse_request("SLO off").unwrap(),
            Request::Slo(SloAction::Clear)
        );
    }

    #[test]
    fn slo_request_garbage_is_a_seqless_bad_request() {
        // Pinned `ERR 0 bad-request` surface: SLO carries no sequence
        // number, so every malformed variant answers at seq 0.
        for line in [
            "SLO abc",
            "SLO 0",
            "SLO -3",
            "SLO 1.5",
            "SLO 12 34",
            "SLO off now",
        ] {
            let err = parse_request(line).err().unwrap_or_else(|| {
                panic!("`{line}` parsed");
            });
            assert_eq!(err.code, ErrorCode::BadRequest, "`{line}` → {err:?}");
            assert_eq!(err.seq, 0, "`{line}` → {err:?}");
        }
    }

    #[test]
    fn slo_response_roundtrip() {
        for budget in [Some(1u64), Some(750), None] {
            let line = format_response(&Response::Slo(budget));
            assert_eq!(parse_response(&line, 1).unwrap(), Response::Slo(budget));
        }
        assert!(parse_response("SLO", 1).is_err());
        assert!(parse_response("SLO maybe", 1).is_err());
        assert!(parse_response("SLO 5 6", 1).is_err());
    }

    #[test]
    fn truncated_stats_response_fails_not_parses_as_idle() {
        // A bare or partial STATS line must be a protocol error — an
        // all-zero report is indistinguishable from an idle server.
        for line in [
            "STATS",
            "STATS queue_depth=0",
            "STATS queue_depth=0 window_lanes=0 max_lanes=256",
            "STATS queue_depth=0 window_lanes=0 word_bits=256 engine=ripple:1:0:1",
            // All the pre-SLO keys but no slo= — a v2-era line must fail.
            "STATS queue_depth=0 window_lanes=0 max_lanes=256 word_bits=256",
            // All the pre-binary keys but no proto counters — a v3-era
            // line must fail.
            "STATS queue_depth=0 window_lanes=0 max_lanes=256 word_bits=256 slo=off",
            // All the pre-lane keys but no lanes_total= — a v4-era line
            // must fail.
            "STATS queue_depth=0 window_lanes=0 max_lanes=256 word_bits=256 slo=off \
             proto_text=0 proto_bin=0",
        ] {
            let err = parse_response(line, 1).expect_err(line);
            assert!(err.contains("mandatory"), "{line}: {err}");
        }
        // A lane-token count that disagrees with lanes_total is truncation.
        let err = parse_response(
            "STATS queue_depth=0 window_lanes=0 max_lanes=256 word_bits=256 slo=off \
             proto_text=0 proto_bin=0 lanes_total=2 lane=ripple:64:depth=0:occupancy=0",
            1,
        )
        .expect_err("count mismatch");
        assert!(err.contains("lanes_total"), "{err}");
        // And occupancy never divides by zero even on a hand-built report.
        let zeroed = StatsReport {
            queue_depth: 0,
            window_lanes: 0,
            max_lanes: 0,
            word_bits: 0,
            slo_micros: None,
            proto_text: 0,
            proto_bin: 0,
            lanes: Vec::new(),
            engines: Vec::new(),
            routes: Vec::new(),
        };
        assert_eq!(zeroed.window_occupancy(), 0.0);
    }

    #[test]
    fn stats_response_roundtrip_is_one_line() {
        let stats = StatsReport {
            queue_depth: 3,
            window_lanes: 17,
            max_lanes: 256,
            word_bits: 256,
            slo_micros: Some(750),
            proto_text: 420,
            proto_bin: 69,
            lanes: vec![
                LaneStats {
                    engine: "vlcsa1".into(),
                    width: 64,
                    depth: 2,
                    occupancy: 13,
                },
                LaneStats {
                    engine: "ripple".into(),
                    width: 100,
                    depth: 1,
                    occupancy: 4,
                },
            ],
            engines: vec![
                EngineStats {
                    name: "vlcsa1".into(),
                    lanes: 1000,
                    stalls: 251,
                    groups: 37,
                },
                EngineStats {
                    name: "ripple".into(),
                    lanes: 64,
                    stalls: 0,
                    groups: 2,
                },
            ],
            routes: vec![
                RouteStat {
                    width: 32,
                    engine: "vlcsa2".into(),
                    degraded: false,
                },
                RouteStat {
                    width: 64,
                    engine: "ripple".into(),
                    degraded: true,
                },
            ],
        };
        let line = format_response(&Response::Stats(stats.clone()));
        assert!(!line.contains('\n'), "STATS must be a single line: {line}");
        assert!(
            line.starts_with("STATS queue_depth=3 window_lanes=17"),
            "{line}"
        );
        assert!(line.contains("slo=750"), "{line}");
        assert!(
            line.contains("proto_text=420 proto_bin=69 lanes_total=2"),
            "{line}"
        );
        assert!(
            line.contains("lane=vlcsa1:64:depth=2:occupancy=13"),
            "{line}"
        );
        assert!(
            line.contains("lane=ripple:100:depth=1:occupancy=4"),
            "{line}"
        );
        assert!(line.contains("engine=vlcsa1:1000:251:37"), "{line}");
        assert!(line.contains("route=32:vlcsa2:ok"), "{line}");
        assert!(line.contains("route=64:ripple:degraded"), "{line}");
        match parse_response(&line, 1).unwrap() {
            Response::Stats(parsed) => {
                assert_eq!(parsed, stats);
                assert!((parsed.engine("vlcsa1").unwrap().stall_rate() - 0.251).abs() < 1e-12);
                assert!((parsed.window_occupancy() - 17.0 / 256.0).abs() < 1e-12);
                assert_eq!(parsed.total_lanes(), 1064);
                assert_eq!(parsed.total_stalls(), 251);
                assert_eq!(parsed.total_groups(), 39);
                assert_eq!(parsed.lane("vlcsa1", 64).unwrap().depth, 2);
                assert_eq!(parsed.lane("ripple", 100).unwrap().occupancy, 4);
                assert!(parsed.lane("vlcsa1", 100).is_none());
            }
            other => panic!("parsed {other:?}"),
        }
    }
}

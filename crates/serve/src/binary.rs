//! Wire protocol v2: versioned, length-prefixed binary frames whose
//! operands are little-endian `u64` limbs — the zero-copy ingress of the
//! serve front-end.
//!
//! A connection starts in the text protocol ([`crate::protocol`]). A
//! client that wants binary framing sends [`HELLO_LINE`] as its **first**
//! line; the server echoes the same line and from that point both
//! directions carry frames. Any other first line commits the connection
//! to text forever, so text clients keep working unchanged — they never
//! see a frame. After the upgrade there is no way back to text.
//!
//! ```text
//! negotiation state machine (server side)
//!
//!            "HELLO BIN 1\n" as the FIRST line
//!   [text] ─────────────────────────────────────▶ [binary, forever]
//!      │                                              echoes HELLO BIN 1\n
//!      │ any other first line
//!      ▼
//!   [text, forever]   (a later "HELLO BIN 1" line is ERR bad-request:
//!                      unknown command — negotiation is first-line-only)
//! ```
//!
//! Every frame is a fixed 6-byte header followed by `len` body bytes, all
//! integers little-endian:
//!
//! ```text
//!  0        1        2        3        4        5        6
//! +--------+--------+--------+--------+--------+--------+----------- - -
//! |version | opcode |            len (u32 LE)           | body (len bytes)
//! +--------+--------+--------+--------+--------+--------+----------- - -
//! ```
//!
//! Request bodies (`ADD`/`SUM`/`PROG` share the 13-byte head):
//!
//! ```text
//! ADD  (0x01): seq u64 | engine u8 | width u16 | nops u16 = 2 | a limbs | b limbs
//! SUM  (0x02): seq u64 | engine u8 | width u16 | nops u16     | nops × operand limbs
//! PROG (0x03): seq u64 | engine u8 | width u16 | nops u16 | spec_len u16 | spec | limbs
//! ENGINES (0x10), STATS (0x11): empty body
//! SLO  (0x12): action u8 (0 query, 1 set, 2 clear) | micros u64
//! ```
//!
//! Each operand is exactly `width.div_ceil(64)` limbs of 8 bytes,
//! little-endian limb first — precisely the [`UBig::limbs`] /
//! [`BitSlab::set_lane_limbs`](bitnum::batch::BitSlab::set_lane_limbs)
//! layout, so a well-formed `ADD` operand is copied, never parsed.
//! `engine` is the index of the server's `ENGINES` listing (ids are
//! assigned in listing order), with [`ENGINE_ID_AUTO`] for the `auto`
//! pseudo-engine.
//!
//! Response bodies mirror the shape:
//!
//! ```text
//! OK      (0x81): seq u64 | cout u8 | cycles u8 | sum limbs
//! ERR     (0x82): seq u64 | code u8 | message utf8
//! ENGINES (0x90): count u8 | (id u8 | name_len u8 | name utf8)…
//! STATS   (0x91): the one-line text STATS snapshot, utf8
//! SLO     (0x92): flag u8 (0 off, 1 set) | micros u64
//! ```
//!
//! Robustness contract: a malformed **body** (bad opcode, inconsistent
//! counts, stray operand bits) is answered with an `ERR` frame and the
//! connection continues — the length prefix kept the stream in sync. A
//! header the server cannot trust (unknown version byte, oversized
//! length) is answered with a best-effort `ERR` frame and the connection
//! closes, because resynchronization is impossible. A disconnect
//! mid-frame is a clean close.

use bitnum::UBig;
use vlcsa::program::Program;
use vlcsa::route::AUTO_ENGINE;

use crate::protocol::{ErrorCode, RequestError, SloAction, OPERAND_RANGE, WIDTH_RANGE};

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// The exact first line (no trailing newline) that upgrades a connection
/// to binary framing; the server echoes it back as the acceptance.
pub const HELLO_LINE: &str = "HELLO BIN 1";

/// Bytes of the fixed frame header: version, opcode, body length.
pub const HEADER_LEN: usize = 6;

/// Upper bound on a frame body. The largest legitimate request — a
/// 64-operand `PROG` at the 4096-bit width cap, spec included — is under
/// 40 KiB, so anything above this is a lying length prefix and the
/// connection is closed rather than resynced.
pub const MAX_FRAME_BODY: usize = 64 * 1024;

/// The engine id of the `auto` pseudo-engine in `ADD`/`SUM`/`PROG`
/// frames and the binary `ENGINES` listing.
pub const ENGINE_ID_AUTO: u8 = 0xff;

/// Request opcodes (client → server).
pub mod op {
    /// One addition; operands as limbs.
    pub const ADD: u8 = 0x01;
    /// One n-operand reduction.
    pub const SUM: u8 = 0x02;
    /// One dataflow add-program.
    pub const PROG: u8 = 0x03;
    /// List engine ids and names.
    pub const ENGINES: u8 = 0x10;
    /// Snapshot the service counters.
    pub const STATS: u8 = 0x11;
    /// Query / set / clear the p99 budget.
    pub const SLO: u8 = 0x12;
}

/// Response opcodes (server → client).
pub mod resp {
    /// A lane's exact result.
    pub const OK: u8 = 0x81;
    /// A per-request failure.
    pub const ERR: u8 = 0x82;
    /// The id ↔ name listing.
    pub const ENGINES: u8 = 0x90;
    /// The counters snapshot (text payload).
    pub const STATS: u8 = 0x91;
    /// The budget in force.
    pub const SLO: u8 = 0x92;
}

/// One decoded binary request, ready for the service. `Add` carries its
/// operands as raw limb runs — the zero-copy path; `Sum`/`Prog` operands
/// become [`UBig`]s at decode time (one limb copy each, still no hex),
/// because the carry-save compression downstream works on values anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinRequest {
    /// An `ADD` frame. `engine` is already resolved to its registry name
    /// (or [`AUTO_ENGINE`]); `a`/`b` are the frame's limb bytes, verbatim.
    Add {
        /// Client-chosen sequence number, echoed in the response.
        seq: u64,
        /// Resolved engine name.
        engine: &'static str,
        /// Operand width in bits.
        width: usize,
        /// First operand, as `width.div_ceil(64)` little-endian limbs.
        a: Vec<u64>,
        /// Second operand, same shape.
        b: Vec<u64>,
    },
    /// A `SUM` frame.
    Sum {
        /// Client-chosen sequence number, echoed in the response.
        seq: u64,
        /// Resolved engine name.
        engine: &'static str,
        /// Operand width in bits.
        width: usize,
        /// The operands, in wire order.
        operands: Vec<UBig>,
    },
    /// A `PROG` frame.
    Prog {
        /// Client-chosen sequence number, echoed in the response.
        seq: u64,
        /// Resolved engine name.
        engine: &'static str,
        /// Operand width in bits.
        width: usize,
        /// The parsed, validated program shape.
        program: Program,
        /// The program's inputs, in wire order.
        inputs: Vec<UBig>,
    },
    /// An `ENGINES` frame.
    Engines,
    /// A `STATS` frame.
    Stats,
    /// An `SLO` frame.
    Slo(SloAction),
}

/// One decoded binary response, client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinResponse {
    /// An `OK` frame; the sum still in limb form (the caller knows the
    /// request's width).
    Ok {
        /// Echoed request sequence number.
        seq: u64,
        /// Carry out of the most significant bit.
        cout: bool,
        /// Cycles the lane consumed (1, or 2 after a recovery stall).
        cycles: u8,
        /// The sum's little-endian limbs.
        sum_limbs: Vec<u64>,
    },
    /// An `ERR` frame.
    Err(RequestError),
    /// The `(id, name)` listing of an `ENGINES` frame.
    Engines(Vec<(u8, String)>),
    /// The text `STATS` line a `STATS` frame carries.
    Stats(String),
    /// The budget of an `SLO` frame.
    Slo(Option<u64>),
}

fn code_byte(code: ErrorCode) -> u8 {
    match code {
        ErrorCode::BadRequest => 1,
        ErrorCode::UnknownEngine => 2,
        ErrorCode::BadWidth => 3,
        ErrorCode::BadOperand => 4,
        ErrorCode::Shutdown => 5,
    }
}

fn code_from_byte(byte: u8) -> Option<ErrorCode> {
    Some(match byte {
        1 => ErrorCode::BadRequest,
        2 => ErrorCode::UnknownEngine,
        3 => ErrorCode::BadWidth,
        4 => ErrorCode::BadOperand,
        5 => ErrorCode::Shutdown,
        _ => return None,
    })
}

/// Frames `body` under `(version, opcode)` — header plus body in one
/// buffer, so transports issue a single write per frame.
fn frame(opcode: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.push(PROTOCOL_VERSION);
    out.push(opcode);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// A little-endian cursor over a frame body.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// `n` little-endian limbs.
    fn limbs(&mut self, n: usize) -> Option<Vec<u64>> {
        let bytes = self.take(n * 8)?;
        Some(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect(),
        )
    }
}

fn bad(seq: u64, code: ErrorCode, message: impl Into<String>) -> RequestError {
    RequestError {
        seq,
        code,
        message: message.into(),
    }
}

/// Best-effort sequence number of a malformed body: the first 8 bytes if
/// present, else 0 — so truncated frames still answer a seq when they
/// carried one.
fn peek_seq(body: &[u8]) -> u64 {
    Cursor::new(body).u64().unwrap_or(0)
}

/// Resolves a frame's engine id against the listing order. `names` is the
/// server's `ENGINES` listing without `auto` (ids in slice order).
fn resolve_engine(id: u8, seq: u64, names: &[&'static str]) -> Result<&'static str, RequestError> {
    if id == ENGINE_ID_AUTO {
        return Ok(AUTO_ENGINE);
    }
    names.get(id as usize).copied().ok_or_else(|| {
        let known: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{i}={n}"))
            .chain(std::iter::once(format!("{ENGINE_ID_AUTO}={AUTO_ENGINE}")))
            .collect();
        bad(
            seq,
            ErrorCode::UnknownEngine,
            format!("unknown engine id {id}; known ids: {}", known.join(" ")),
        )
    })
}

/// Limbs per operand at `width`.
fn limbs_for(width: usize) -> usize {
    width.div_ceil(64)
}

/// Validates that an operand's top limb has no bits at or above `width`.
fn check_operand(seq: u64, width: usize, k: usize, limbs: &[u64]) -> Result<(), RequestError> {
    let used = width % 64;
    if used != 0 && limbs[limbs.len() - 1] >> used != 0 {
        return Err(bad(
            seq,
            ErrorCode::BadOperand,
            format!("operand {k}: bits set at or above width {width}"),
        ));
    }
    Ok(())
}

/// The shared `seq | engine | width | nops` head of a computing request.
fn decode_head(
    cmd: &str,
    cursor: &mut Cursor<'_>,
    names: &[&'static str],
) -> Result<(u64, &'static str, usize, usize), RequestError> {
    let seq = cursor
        .u64()
        .ok_or_else(|| bad(0, ErrorCode::BadRequest, format!("{cmd} body is truncated")))?;
    let truncated = || {
        bad(
            seq,
            ErrorCode::BadRequest,
            format!("{cmd} body is truncated"),
        )
    };
    let engine_id = cursor.u8().ok_or_else(truncated)?;
    let width = cursor.u16().ok_or_else(truncated)? as usize;
    let nops = cursor.u16().ok_or_else(truncated)? as usize;
    if !WIDTH_RANGE.contains(&width) {
        return Err(bad(
            seq,
            ErrorCode::BadWidth,
            format!(
                "width {width} outside {}..={}",
                WIDTH_RANGE.start(),
                WIDTH_RANGE.end()
            ),
        ));
    }
    let engine = resolve_engine(engine_id, seq, names)?;
    Ok((seq, engine, width, nops))
}

/// Exactly `n` limb operands at `width`, as values, then end of body.
fn decode_values(
    cmd: &str,
    seq: u64,
    width: usize,
    n: usize,
    cursor: &mut Cursor<'_>,
) -> Result<Vec<UBig>, RequestError> {
    let nl = limbs_for(width);
    let mut operands = Vec::with_capacity(n);
    for k in 0..n {
        let limbs = cursor.limbs(nl).ok_or_else(|| {
            bad(
                seq,
                ErrorCode::BadRequest,
                format!("{cmd} is missing operand {k} of {n}"),
            )
        })?;
        check_operand(seq, width, k, &limbs)?;
        operands.push(UBig::from_limbs(&limbs, width));
    }
    if cursor.remaining() != 0 {
        return Err(bad(
            seq,
            ErrorCode::BadRequest,
            format!("{cmd} body has {} trailing bytes", cursor.remaining()),
        ));
    }
    Ok(operands)
}

/// Decodes one request frame body. `names` is the server's engine listing
/// (ids in slice order, `auto` excluded).
///
/// # Errors
///
/// Returns the [`RequestError`] to answer with an `ERR` frame; the length
/// prefix already kept the stream in sync, so the connection continues.
pub fn decode_request(
    opcode: u8,
    body: &[u8],
    names: &[&'static str],
) -> Result<BinRequest, RequestError> {
    let mut cursor = Cursor::new(body);
    match opcode {
        op::ADD => {
            let (seq, engine, width, nops) = decode_head("ADD", &mut cursor, names)?;
            if nops != 2 {
                return Err(bad(
                    seq,
                    ErrorCode::BadRequest,
                    format!("ADD carries exactly 2 operands, got {nops}"),
                ));
            }
            let nl = limbs_for(width);
            let truncated = || {
                bad(
                    seq,
                    ErrorCode::BadRequest,
                    "ADD body is truncated".to_string(),
                )
            };
            let a = cursor.limbs(nl).ok_or_else(truncated)?;
            let b = cursor.limbs(nl).ok_or_else(truncated)?;
            if cursor.remaining() != 0 {
                return Err(bad(
                    seq,
                    ErrorCode::BadRequest,
                    format!("ADD body has {} trailing bytes", cursor.remaining()),
                ));
            }
            check_operand(seq, width, 0, &a)?;
            check_operand(seq, width, 1, &b)?;
            Ok(BinRequest::Add {
                seq,
                engine,
                width,
                a,
                b,
            })
        }
        op::SUM => {
            let (seq, engine, width, nops) = decode_head("SUM", &mut cursor, names)?;
            if !OPERAND_RANGE.contains(&nops) {
                return Err(bad(
                    seq,
                    ErrorCode::BadRequest,
                    format!(
                        "operand count {nops} outside {}..={}",
                        OPERAND_RANGE.start(),
                        OPERAND_RANGE.end()
                    ),
                ));
            }
            let operands = decode_values("SUM", seq, width, nops, &mut cursor)?;
            Ok(BinRequest::Sum {
                seq,
                engine,
                width,
                operands,
            })
        }
        op::PROG => {
            let (seq, engine, width, nops) = decode_head("PROG", &mut cursor, names)?;
            if !OPERAND_RANGE.contains(&nops) {
                return Err(bad(
                    seq,
                    ErrorCode::BadRequest,
                    format!(
                        "operand count {nops} outside {}..={}",
                        OPERAND_RANGE.start(),
                        OPERAND_RANGE.end()
                    ),
                ));
            }
            let spec_len = cursor
                .u16()
                .ok_or_else(|| bad(seq, ErrorCode::BadRequest, "PROG body is truncated"))?;
            let spec = cursor
                .take(spec_len as usize)
                .ok_or_else(|| bad(seq, ErrorCode::BadRequest, "PROG spec is truncated"))?;
            let spec = std::str::from_utf8(spec)
                .map_err(|_| bad(seq, ErrorCode::BadRequest, "PROG spec is not utf-8"))?;
            let program = Program::from_spec(spec, nops)
                .map_err(|e| bad(seq, ErrorCode::BadRequest, format!("program spec: {e}")))?;
            let inputs = decode_values("PROG", seq, width, nops, &mut cursor)?;
            Ok(BinRequest::Prog {
                seq,
                engine,
                width,
                program,
                inputs,
            })
        }
        op::ENGINES | op::STATS => {
            if !body.is_empty() {
                return Err(bad(
                    0,
                    ErrorCode::BadRequest,
                    "ENGINES/STATS frames carry no body",
                ));
            }
            Ok(if opcode == op::ENGINES {
                BinRequest::Engines
            } else {
                BinRequest::Stats
            })
        }
        op::SLO => {
            let malformed = || {
                bad(
                    0,
                    ErrorCode::BadRequest,
                    "SLO frames are action u8 + micros u64",
                )
            };
            let action = cursor.u8().ok_or_else(malformed)?;
            let micros = cursor.u64().ok_or_else(malformed)?;
            if cursor.remaining() != 0 {
                return Err(malformed());
            }
            let action = match (action, micros) {
                (0, 0) => SloAction::Query,
                (1, m) if m >= 1 => SloAction::Set(m),
                (2, 0) => SloAction::Clear,
                _ => {
                    return Err(bad(
                        0,
                        ErrorCode::BadRequest,
                        format!("SLO action {action} with micros {micros} is invalid"),
                    ))
                }
            };
            Ok(BinRequest::Slo(action))
        }
        other => Err(bad(
            peek_seq(body),
            ErrorCode::BadRequest,
            format!("unknown opcode {other:#04x}"),
        )),
    }
}

fn push_limbs(out: &mut Vec<u8>, limbs: &[u64]) {
    for &limb in limbs {
        out.extend_from_slice(&limb.to_le_bytes());
    }
}

fn request_head(seq: u64, engine_id: u8, width: usize, nops: usize) -> Vec<u8> {
    let mut body = Vec::with_capacity(13);
    body.extend_from_slice(&seq.to_le_bytes());
    body.push(engine_id);
    body.extend_from_slice(&(width as u16).to_le_bytes());
    body.extend_from_slice(&(nops as u16).to_le_bytes());
    body
}

/// Encodes an `ADD` frame from raw limbs (the client's submit path).
pub fn encode_add(seq: u64, engine_id: u8, width: usize, a: &[u64], b: &[u64]) -> Vec<u8> {
    let mut body = request_head(seq, engine_id, width, 2);
    push_limbs(&mut body, a);
    push_limbs(&mut body, b);
    frame(op::ADD, &body)
}

/// Encodes a `SUM` frame.
///
/// # Panics
///
/// Panics if `operands` is empty (the width comes from the first one).
pub fn encode_sum(seq: u64, engine_id: u8, operands: &[UBig]) -> Vec<u8> {
    let width = operands[0].width();
    let mut body = request_head(seq, engine_id, width, operands.len());
    for op in operands {
        push_limbs(&mut body, op.limbs());
    }
    frame(op::SUM, &body)
}

/// Encodes a `PROG` frame.
///
/// # Panics
///
/// Panics if `inputs` is empty or the program's spec exceeds `u16::MAX`
/// bytes (no [`Program`] within [`vlcsa::program::MAX_PROGRAM_STEPS`]
/// does).
pub fn encode_program(seq: u64, engine_id: u8, program: &Program, inputs: &[UBig]) -> Vec<u8> {
    let spec = program.spec();
    let width = inputs[0].width();
    let mut body = request_head(seq, engine_id, width, inputs.len());
    body.extend_from_slice(
        &u16::try_from(spec.len())
            .expect("spec fits u16")
            .to_le_bytes(),
    );
    body.extend_from_slice(spec.as_bytes());
    for op in inputs {
        push_limbs(&mut body, op.limbs());
    }
    frame(op::PROG, &body)
}

/// Encodes an `ENGINES` request frame.
pub fn encode_engines_request() -> Vec<u8> {
    frame(op::ENGINES, &[])
}

/// Encodes a `STATS` request frame.
pub fn encode_stats_request() -> Vec<u8> {
    frame(op::STATS, &[])
}

/// Encodes an `SLO` request frame.
pub fn encode_slo_request(action: SloAction) -> Vec<u8> {
    let (action, micros) = match action {
        SloAction::Query => (0u8, 0u64),
        SloAction::Set(m) => (1, m),
        SloAction::Clear => (2, 0),
    };
    let mut body = Vec::with_capacity(9);
    body.push(action);
    body.extend_from_slice(&micros.to_le_bytes());
    frame(op::SLO, &body)
}

/// Encodes an `OK` response frame straight from limbs — no hex, no
/// [`UBig`] formatting on the reply path.
pub fn encode_ok(seq: u64, cout: bool, cycles: u8, sum_limbs: &[u64]) -> Vec<u8> {
    let mut body = Vec::with_capacity(10 + sum_limbs.len() * 8);
    body.extend_from_slice(&seq.to_le_bytes());
    body.push(u8::from(cout));
    body.push(cycles);
    push_limbs(&mut body, sum_limbs);
    frame(resp::OK, &body)
}

/// Encodes an `ERR` response frame.
pub fn encode_err(err: &RequestError) -> Vec<u8> {
    let mut body = Vec::with_capacity(9 + err.message.len());
    body.extend_from_slice(&err.seq.to_le_bytes());
    body.push(code_byte(err.code));
    body.extend_from_slice(err.message.as_bytes());
    frame(resp::ERR, &body)
}

/// Encodes the `ENGINES` response listing.
///
/// # Panics
///
/// Panics if an entry's name exceeds 255 bytes or there are more than 255
/// entries (registry names are short; the id space is a `u8`).
pub fn encode_engines(entries: &[(u8, &str)]) -> Vec<u8> {
    let mut body = vec![u8::try_from(entries.len()).expect("at most 255 engines")];
    for (id, name) in entries {
        body.push(*id);
        body.push(u8::try_from(name.len()).expect("engine names fit a u8 length"));
        body.extend_from_slice(name.as_bytes());
    }
    frame(resp::ENGINES, &body)
}

/// Encodes the `STATS` response frame around the text snapshot line.
pub fn encode_stats(line: &str) -> Vec<u8> {
    frame(resp::STATS, line.as_bytes())
}

/// Encodes the `SLO` response frame.
pub fn encode_slo(budget: Option<u64>) -> Vec<u8> {
    let mut body = Vec::with_capacity(9);
    match budget {
        Some(micros) => {
            body.push(1);
            body.extend_from_slice(&micros.to_le_bytes());
        }
        None => {
            body.push(0);
            body.extend_from_slice(&0u64.to_le_bytes());
        }
    }
    frame(resp::SLO, &body)
}

/// Decodes one response frame body, client side.
///
/// # Errors
///
/// Returns a description of the malformed frame.
pub fn decode_response(opcode: u8, body: &[u8]) -> Result<BinResponse, String> {
    let mut cursor = Cursor::new(body);
    match opcode {
        resp::OK => {
            let seq = cursor.u64().ok_or("OK frame is truncated")?;
            let cout = match cursor.u8().ok_or("OK frame is truncated")? {
                0 => false,
                1 => true,
                other => return Err(format!("OK cout must be 0|1, got {other}")),
            };
            let cycles = cursor.u8().ok_or("OK frame is truncated")?;
            if !cursor.remaining().is_multiple_of(8) {
                return Err(format!(
                    "OK sum is {} bytes, not whole limbs",
                    cursor.remaining()
                ));
            }
            let n = cursor.remaining() / 8;
            let sum_limbs = cursor.limbs(n).expect("sized above");
            Ok(BinResponse::Ok {
                seq,
                cout,
                cycles,
                sum_limbs,
            })
        }
        resp::ERR => {
            let seq = cursor.u64().ok_or("ERR frame is truncated")?;
            let code = cursor
                .u8()
                .and_then(code_from_byte)
                .ok_or("ERR frame needs a known code byte")?;
            let message = std::str::from_utf8(cursor.take(cursor.remaining()).expect("rest"))
                .map_err(|_| "ERR message is not utf-8")?
                .to_string();
            Ok(BinResponse::Err(RequestError { seq, code, message }))
        }
        resp::ENGINES => {
            let count = cursor.u8().ok_or("ENGINES frame is truncated")?;
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let id = cursor.u8().ok_or("ENGINES entry is truncated")?;
                let len = cursor.u8().ok_or("ENGINES entry is truncated")?;
                let name = std::str::from_utf8(
                    cursor
                        .take(len as usize)
                        .ok_or("ENGINES entry is truncated")?,
                )
                .map_err(|_| "ENGINES name is not utf-8")?;
                entries.push((id, name.to_string()));
            }
            if cursor.remaining() != 0 {
                return Err("ENGINES frame has trailing bytes".into());
            }
            Ok(BinResponse::Engines(entries))
        }
        resp::STATS => {
            let line = std::str::from_utf8(body).map_err(|_| "STATS payload is not utf-8")?;
            Ok(BinResponse::Stats(line.to_string()))
        }
        resp::SLO => {
            let flag = cursor.u8().ok_or("SLO frame is truncated")?;
            let micros = cursor.u64().ok_or("SLO frame is truncated")?;
            if cursor.remaining() != 0 {
                return Err("SLO frame has trailing bytes".into());
            }
            match flag {
                0 => Ok(BinResponse::Slo(None)),
                1 => Ok(BinResponse::Slo(Some(micros))),
                other => Err(format!("SLO flag must be 0|1, got {other}")),
            }
        }
        other => Err(format!("unknown response opcode {other:#04x}")),
    }
}

/// Reads one frame — `(opcode, body)` — from a buffered stream.
///
/// # Errors
///
/// `Ok(None)` is a clean end-of-stream at a frame boundary. `Err` carries
/// a [`FrameReadError`]: an io/EOF error mid-frame, an unknown version
/// byte, or a lying length prefix — all conditions under which the stream
/// cannot be resynchronized.
pub fn read_frame(
    reader: &mut impl std::io::BufRead,
) -> Result<Option<(u8, Vec<u8>)>, FrameReadError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish "closed between frames" from "died mid-frame": only the
    // former is a clean close.
    match reader.fill_buf() {
        Ok([]) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(FrameReadError::Io(e)),
    }
    reader.read_exact(&mut header).map_err(FrameReadError::Io)?;
    let version = header[0];
    if version != PROTOCOL_VERSION {
        return Err(FrameReadError::BadVersion(version));
    }
    let len = u32::from_le_bytes(header[2..6].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_BODY {
        return Err(FrameReadError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(FrameReadError::Io)?;
    Ok(Some((header[1], body)))
}

/// Why [`read_frame`] gave up on a stream.
#[derive(Debug)]
pub enum FrameReadError {
    /// The socket failed or closed mid-frame.
    Io(std::io::Error),
    /// The version byte is not [`PROTOCOL_VERSION`]; nothing after it can
    /// be trusted.
    BadVersion(u8),
    /// The length prefix exceeds [`MAX_FRAME_BODY`]; it is lying.
    Oversized(usize),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "frame read failed: {e}"),
            FrameReadError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            FrameReadError::Oversized(len) => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {MAX_FRAME_BODY}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for FrameReadError {}

#[cfg(test)]
mod tests {
    use super::*;

    const NAMES: [&str; 4] = ["ripple", "carry-select", "vlcsa1", "vlcsa2"];

    fn body_of(frame_bytes: &[u8]) -> (u8, &[u8]) {
        assert_eq!(frame_bytes[0], PROTOCOL_VERSION);
        let len = u32::from_le_bytes(frame_bytes[2..6].try_into().unwrap()) as usize;
        assert_eq!(frame_bytes.len(), HEADER_LEN + len, "length prefix lies");
        (frame_bytes[1], &frame_bytes[HEADER_LEN..])
    }

    #[test]
    fn add_frame_roundtrips_limbs_verbatim() {
        let a = [0xdead_beef_u64, 0x3];
        let b = [0x1234, 0x0];
        let encoded = encode_add(42, 2, 100, &a, &b);
        let (opcode, body) = body_of(&encoded);
        assert_eq!(opcode, op::ADD);
        match decode_request(opcode, body, &NAMES).unwrap() {
            BinRequest::Add {
                seq,
                engine,
                width,
                a: da,
                b: db,
            } => {
                assert_eq!((seq, engine, width), (42, "vlcsa1", 100));
                assert_eq!(da, a);
                assert_eq!(db, b);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn auto_and_bad_engine_ids() {
        let encoded = encode_add(1, ENGINE_ID_AUTO, 64, &[5], &[6]);
        let (opcode, body) = body_of(&encoded);
        match decode_request(opcode, body, &NAMES).unwrap() {
            BinRequest::Add { engine, .. } => assert_eq!(engine, AUTO_ENGINE),
            other => panic!("decoded {other:?}"),
        }
        // An out-of-range id answers with the id ↔ name listing, code
        // unknown-engine — the Registry::lookup error path, binary shaped.
        let encoded = encode_add(7, 9, 64, &[5], &[6]);
        let (opcode, body) = body_of(&encoded);
        let err = decode_request(opcode, body, &NAMES).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownEngine);
        assert_eq!(err.seq, 7);
        assert!(err.message.contains("0=ripple"), "{}", err.message);
        assert!(err.message.contains("255=auto"), "{}", err.message);
    }

    #[test]
    fn sum_and_prog_roundtrip() {
        let ops: Vec<UBig> = [0xdeadu128, 0xbeef, 0x7]
            .iter()
            .map(|&v| UBig::from_u128(v, 48))
            .collect();
        let (opcode, body_owned) = {
            let f = encode_sum(9, 0, &ops);
            let (o, b) = body_of(&f);
            (o, b.to_vec())
        };
        match decode_request(opcode, &body_owned, &NAMES).unwrap() {
            BinRequest::Sum {
                seq,
                engine,
                width,
                operands,
            } => {
                assert_eq!((seq, engine, width), (9, "ripple", 48));
                assert_eq!(operands, ops);
            }
            other => panic!("decoded {other:?}"),
        }
        let program = Program::from_spec("i0+i1,t0+i2", 3).unwrap();
        let f = encode_program(3, 1, &program, &ops);
        let (opcode, body) = body_of(&f);
        match decode_request(opcode, body, &NAMES).unwrap() {
            BinRequest::Prog {
                seq,
                engine,
                width,
                program: p,
                inputs,
            } => {
                assert_eq!((seq, engine, width), (3, "carry-select", 48));
                assert_eq!(p, program);
                assert_eq!(inputs, ops);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn control_frames_roundtrip() {
        for (frame_bytes, want) in [
            (encode_engines_request(), BinRequest::Engines),
            (encode_stats_request(), BinRequest::Stats),
            (
                encode_slo_request(SloAction::Query),
                BinRequest::Slo(SloAction::Query),
            ),
            (
                encode_slo_request(SloAction::Set(750)),
                BinRequest::Slo(SloAction::Set(750)),
            ),
            (
                encode_slo_request(SloAction::Clear),
                BinRequest::Slo(SloAction::Clear),
            ),
        ] {
            let (opcode, body) = body_of(&frame_bytes);
            assert_eq!(decode_request(opcode, body, &NAMES).unwrap(), want);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for (frame_bytes, want) in [
            (
                encode_ok(11, true, 2, &[0xffff_0001, 0x9]),
                BinResponse::Ok {
                    seq: 11,
                    cout: true,
                    cycles: 2,
                    sum_limbs: vec![0xffff_0001, 0x9],
                },
            ),
            (
                encode_err(&RequestError {
                    seq: 3,
                    code: ErrorCode::BadWidth,
                    message: "width 0 outside 1..=4096".into(),
                }),
                BinResponse::Err(RequestError {
                    seq: 3,
                    code: ErrorCode::BadWidth,
                    message: "width 0 outside 1..=4096".into(),
                }),
            ),
            (
                encode_engines(&[(0, "ripple"), (ENGINE_ID_AUTO, "auto")]),
                BinResponse::Engines(vec![(0, "ripple".into()), (ENGINE_ID_AUTO, "auto".into())]),
            ),
            (
                encode_stats("STATS queue_depth=0"),
                BinResponse::Stats("STATS queue_depth=0".into()),
            ),
            (encode_slo(Some(500)), BinResponse::Slo(Some(500))),
            (encode_slo(None), BinResponse::Slo(None)),
        ] {
            let (opcode, body) = body_of(&frame_bytes);
            assert_eq!(decode_response(opcode, body).unwrap(), want, "{opcode:#x}");
        }
    }

    #[test]
    fn malformed_bodies_answer_with_codes_not_panics() {
        // Truncations at every boundary, wrong counts, stray bits — all
        // answerable ERRs (the length prefix keeps the stream in sync).
        let good = encode_add(5, 0, 64, &[1], &[2]);
        let (_, good_body) = body_of(&good);
        for cut in 0..good_body.len() {
            let err = decode_request(op::ADD, &good_body[..cut], &NAMES).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "cut at {cut}");
        }
        // Trailing bytes.
        let mut long = good_body.to_vec();
        long.push(0);
        assert_eq!(
            decode_request(op::ADD, &long, &NAMES).unwrap_err().code,
            ErrorCode::BadRequest
        );
        // Stray bits above the width.
        let stray = encode_add(5, 0, 60, &[1 << 63], &[0]);
        let (_, body) = body_of(&stray);
        let err = decode_request(op::ADD, body, &NAMES).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadOperand);
        assert_eq!(err.seq, 5);
        // Width 0 and width past the cap.
        for width in [0usize, 5000] {
            let f = encode_add(6, 0, width, &[0], &[0]);
            let (_, body) = body_of(&f);
            assert_eq!(
                decode_request(op::ADD, body, &NAMES).unwrap_err().code,
                ErrorCode::BadWidth
            );
        }
        // Unknown opcode still recovers the seq for the answer.
        let err = decode_request(0x7f, good_body, &NAMES).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(err.seq, 5);
        // SUM operand-count bounds ride the shared head.
        let many = vec![UBig::zero(8); 3];
        let f = encode_sum(5, 0, &many);
        let (_, body) = body_of(&f);
        let mut forged = body.to_vec();
        forged[11..13].copy_from_slice(&100u16.to_le_bytes());
        assert_eq!(
            decode_request(op::SUM, &forged, &NAMES).unwrap_err().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn read_frame_distinguishes_clean_close_from_mid_frame_death() {
        use std::io::BufReader;
        // Clean close at a frame boundary.
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut BufReader::new(empty)), Ok(None)));
        // A whole frame, then a clean close.
        let f = encode_stats_request();
        let mut reader = BufReader::new(f.as_slice());
        let (opcode, body) = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!((opcode, body.as_slice()), (op::STATS, &[][..]));
        assert!(matches!(read_frame(&mut reader), Ok(None)));
        // Death mid-header and mid-body are io errors, not clean closes.
        for cut in [1, HEADER_LEN + 1] {
            let whole = encode_slo_request(SloAction::Query);
            let mut reader = BufReader::new(&whole[..cut]);
            assert!(matches!(
                read_frame(&mut reader),
                Err(FrameReadError::Io(_))
            ));
        }
        // An unknown version byte poisons the stream.
        let mut bad = encode_stats_request();
        bad[0] = 9;
        assert!(matches!(
            read_frame(&mut BufReader::new(bad.as_slice())),
            Err(FrameReadError::BadVersion(9))
        ));
        // A lying length prefix is rejected before any allocation.
        let mut lying = encode_stats_request();
        lying[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut BufReader::new(lying.as_slice())),
            Err(FrameReadError::Oversized(_))
        ));
    }
}

//! The transport-independent service core: per-`(engine, width)` worker
//! lanes, each owning a sharded ingress queue, a batching window and its
//! own worker pool over the sharded executor.
//!
//! Requests flow through three stages, the last two private to a lane:
//!
//! 1. **Submitters** (connection readers, or [`Service::add_blocking`]
//!    callers) validate a request — width in range, operands same width,
//!    engine resolved against the width's [`Registry`], `auto` resolved to
//!    a concrete engine by the [`Router`] — and push a job into the
//!    matching lane's bounded, sharded ingress queue, spinning the lane up
//!    on first use. Validation and routing happen *before* queueing so a
//!    bad request fails alone, with a structured error, and every queued
//!    job already knows which lane runs it.
//! 2. **The lane's batcher** pops the first pending job, then keeps
//!    popping until either `max_lanes` lanes are pending or `max_wait` has
//!    elapsed since that first job — the batching window — and drains the
//!    accumulated [`LaneBuilder`] into one
//!    [`IssueGroup`] on the lane's group queue. A
//!    window that expires with nothing pending produces no group and
//!    touches no executor.
//! 3. **The lane's workers** pop issue groups, run them through
//!    [`Executor::run`], and deliver each lane's sum, carry-out and cycle
//!    count to the request's reply callback — the lane→request mapping is
//!    the group's `tags` vector.
//!
//! Because every lane owns its queues and threads end to end, a stalling
//! or slow engine head-of-line-blocks only its own traffic: other lanes'
//! batchers and workers never wait on it. That is the paper's isolation
//! argument carried into the serving layer — variable-latency wins are
//! only real if a rare slow completion cannot delay the fast ones.
//!
//! [`Service::shutdown`] closes every lane's ingress, lets each batcher
//! drain what was already accepted, closes the group queues, and joins
//! every thread — accepted requests are answered, late submissions fail
//! with [`SubmitError::Stopped`].
//!
//! # Example
//!
//! ```
//! use bitnum::UBig;
//! use vlcsa_serve::service::{Service, ServeConfig};
//!
//! let service = Service::start(ServeConfig::default());
//! let result = service
//!     .add_blocking("vlcsa1", UBig::from_u128(40, 64), UBig::from_u128(2, 64))
//!     .unwrap();
//! assert_eq!(result.sum.to_u128(), Some(42));
//! assert!(result.cycles == 1 || result.cycles == 2);
//! service.shutdown();
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bitnum::batch::{DefaultWord, Word};
use bitnum::UBig;
use vlcsa::engine::{EngineLookupError, Registry};
use vlcsa::exec::Executor;
use vlcsa::group::{IssueGroup, LaneBuilder};
use vlcsa::program::Program;
use vlcsa::route::{RouteConfig, Router, AUTO_ENGINE};

use crate::protocol::{EngineStats, LaneStats, StatsReport, OPERAND_RANGE, WIDTH_RANGE};
use crate::queue::{PopResult, Queue, ShardedQueue};

/// Stripes of every lane's ingress queue — enough that a handful of
/// connection readers funnelling into one hot lane spread across distinct
/// locks, small enough that the batcher's sweep stays cheap.
const INGRESS_SHARDS: usize = 4;

/// Tuning knobs of the service core. Each knob applies **per lane** (a
/// lane is one `(engine, width)` pair traffic has spun up): lanes are
/// fully independent, so their queues and worker pools are too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Bound of each lane's ingress queue (backpressure depth).
    pub queue_depth: usize,
    /// Flush a lane's batching window once this many lanes are pending.
    pub max_lanes: usize,
    /// Flush a lane's batching window this long after its first request.
    pub max_wait: Duration,
    /// Worker threads draining each lane's issue groups.
    pub workers: usize,
    /// Threads of the per-group [`Executor`].
    pub exec_threads: usize,
    /// Tuning of the `auto` router — EWMA weight, exploration floor, p99
    /// window and the initial SLO budget — injected wholesale into the
    /// production [`Router`] by [`Service::start`], so embedders (the TCP
    /// server, the C ABI, tests) configure routing without constructing a
    /// router themselves.
    pub route: RouteConfig,
}

impl Default for ServeConfig {
    /// Small-host defaults: one 256-lane window, half a millisecond of
    /// batching patience, two workers per lane, serial executor, default
    /// routing (no SLO until one is set).
    fn default() -> Self {
        Self {
            queue_depth: 1024,
            max_lanes: 256,
            max_wait: Duration::from_micros(500),
            workers: 2,
            exec_threads: 1,
            route: RouteConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Sets the initial p99 budget (micros) of the `auto` router; `None`
    /// disables SLO degradation until an `SLO <micros>` command (or
    /// [`Service::set_slo`]) sets one.
    pub fn with_slo(mut self, micros: Option<u64>) -> Self {
        self.route.slo_micros = micros;
        self
    }
}

/// One lane's answer: the exact sum plus the engine's latency accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddResult {
    /// The exact sum, at the request's width.
    pub sum: UBig,
    /// Carry out of the most significant bit.
    pub cout: bool,
    /// Cycles the lane consumed: 1, or 2 after a recovery stall.
    pub cycles: u8,
}

/// Why [`Service::submit`] rejected a request before queueing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No engine of that name — carries the full known-name list.
    UnknownEngine(EngineLookupError),
    /// The two operands disagree on width.
    WidthMismatch(usize, usize),
    /// The width is outside [`WIDTH_RANGE`].
    BadWidth(usize),
    /// A reduction's operand count is outside [`OPERAND_RANGE`], or does
    /// not match its program's input count.
    BadOperandCount(usize),
    /// A limb-form operand ([`Service::submit_limbs`]) has the wrong limb
    /// count for its width, or bits set at or above the width.
    BadLimbs(String),
    /// The service is shutting down.
    Stopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownEngine(e) => e.fmt(f),
            SubmitError::WidthMismatch(a, b) => {
                write!(f, "operand widths disagree: {a} vs {b}")
            }
            SubmitError::BadWidth(w) => write!(
                f,
                "width {w} outside {}..={}",
                WIDTH_RANGE.start(),
                WIDTH_RANGE.end()
            ),
            SubmitError::BadOperandCount(n) => write!(
                f,
                "operand count {n} outside {}..={} or not the program's input count",
                OPERAND_RANGE.start(),
                OPERAND_RANGE.end()
            ),
            SubmitError::BadLimbs(detail) => f.write_str(detail),
            SubmitError::Stopped => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The reply callback a request carries through the pipeline: called
/// exactly once, from a worker thread, with the lane's result.
pub type Reply = Box<dyn FnOnce(AddResult) + Send>;

/// The operand form a job carries: parsed values (the text protocol) or
/// raw little-endian limb runs (the binary protocol), which the batcher
/// scatters straight into the slab layout via
/// [`LaneBuilder::push_limbs`] — no intermediate [`UBig`] anywhere on
/// the limb path.
enum Operands {
    /// Two parsed operands of equal width.
    Values { a: UBig, b: UBig },
    /// Two validated limb runs of `width.div_ceil(64)` limbs each.
    Limbs { a: Vec<u64>, b: Vec<u64> },
}

/// A validated request in flight between a submitter and its lane's
/// batcher. The engine and width are the lane's — resolved before
/// queueing — so the job carries only the operands and the reply.
struct Job {
    operands: Operands,
    reply: Reply,
}

/// Moves one job into the lane's batching window, whichever operand form
/// it carries.
fn push_job(builder: &mut LaneBuilder<Reply>, job: Job) {
    match job.operands {
        Operands::Values { a, b } => builder.push(a, b, job.reply),
        Operands::Limbs { a, b } => builder.push_limbs(&a, &b, job.reply),
    }
}

/// A lazily-built, shared cache of [`Registry`] instances, one per
/// requested width — so engine construction cost is paid once per width,
/// not once per request.
pub struct RegistryCache {
    map: Mutex<HashMap<usize, Arc<Registry>>>,
    factory: Box<dyn Fn(usize) -> Registry + Send + Sync>,
}

impl RegistryCache {
    /// Creates an empty cache over the production engine table
    /// ([`Registry::for_width`]).
    pub fn new() -> Self {
        Self::with_factory(Registry::for_width)
    }

    /// Creates an empty cache over a custom per-width registry factory —
    /// the seam the head-of-line isolation test and the serve bench use to
    /// register synthetic (gated or sleeping) engines alongside the
    /// production table, via [`Registry::from_engines`].
    pub fn with_factory(factory: impl Fn(usize) -> Registry + Send + Sync + 'static) -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            factory: Box::new(factory),
        }
    }

    /// The registry at `width`, built on first use.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside [`WIDTH_RANGE`] (callers validate
    /// first).
    pub fn at(&self, width: usize) -> Arc<Registry> {
        let mut map = self.map.lock().expect("registry cache lock");
        Arc::clone(
            map.entry(width)
                .or_insert_with(|| Arc::new((self.factory)(width))),
        )
    }
}

impl Default for RegistryCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Live service counters behind the in-band `STATS` command. Queue depth
/// and window occupancy are per-lane gauges (see [`Lane`]); workers add
/// each completed group's lane and stall counts under the group's engine
/// name here.
struct Metrics {
    /// Text-protocol requests answered (every non-empty line).
    proto_text: AtomicU64,
    /// Binary frames answered.
    proto_bin: AtomicU64,
    /// `(engine, lanes_served, lanes_stalled, groups_run)`, in
    /// first-served order.
    engines: Mutex<Vec<(String, u64, u64, u64)>>,
}

impl Metrics {
    fn new() -> Self {
        Self {
            proto_text: AtomicU64::new(0),
            proto_bin: AtomicU64::new(0),
            engines: Mutex::new(Vec::new()),
        }
    }

    fn record_group(&self, engine: &str, lanes: u64, stalls: u64) {
        let mut engines = self.engines.lock().expect("metrics lock");
        match engines.iter_mut().find(|(name, ..)| name == engine) {
            Some((_, total, stalled, groups)) => {
                *total += lanes;
                *stalled += stalls;
                *groups += 1;
            }
            None => engines.push((engine.to_string(), lanes, stalls, 1)),
        }
    }
}

/// One issue group in flight between a lane's batcher and its workers,
/// tagged with when it was queued: the router's latency observation
/// starts at the batching decision, so the SLO p99s include executor
/// queueing, not just the engine run.
struct QueuedGroup {
    group: IssueGroup<Reply>,
    enqueued: Instant,
}

/// One `(engine, width)` worker lane: the submit-facing half. The batcher
/// thread, the group queue and the worker threads it feeds are spawned at
/// creation and owned by the [`LaneSet`]'s join list; submitters only see
/// the ingress queue and the window gauge.
struct Lane {
    engine: String,
    width: usize,
    ingress: ShardedQueue<Job>,
    /// Lanes pending in the batcher's currently-open window.
    window_lanes: AtomicUsize,
}

/// Every live lane plus the join handles of their threads, behind one
/// lock. The lock is held only to look up / create a lane (rare) and to
/// snapshot stats — never across a queue operation.
struct LaneSet {
    lanes: Vec<Arc<Lane>>,
    threads: Vec<JoinHandle<()>>,
    closed: bool,
}

/// A stable per-thread stripe hint for [`ShardedQueue::push`]: threads
/// enumerate themselves on first submit, so each connection reader keeps
/// hitting its own ingress stripe.
fn shard_hint() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    HINT.with(|h| *h)
}

/// The running service core — see the module docs for the pipeline shape.
pub struct Service {
    lanes: Mutex<LaneSet>,
    registries: Arc<RegistryCache>,
    metrics: Arc<Metrics>,
    router: Arc<Router>,
    config: ServeConfig,
}

impl Service {
    /// Starts the service with a production router (wall-clock time,
    /// registry candidates, `config.route` as its tuning, including the
    /// initial SLO budget). Lanes (and their threads) spin up on demand as
    /// traffic names `(engine, width)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any of `queue_depth`, `max_lanes`, `workers` or
    /// `exec_threads` is zero.
    pub fn start(config: ServeConfig) -> Self {
        Self::start_with_router(config, Arc::new(Router::new(config.route)))
    }

    /// Starts the service over an injected [`Router`] — the seam the
    /// routing tests use to script time and statistics deterministically.
    /// `config.route` is ignored here; the injected router's tuning and
    /// budget are authoritative.
    ///
    /// # Panics
    ///
    /// As [`Service::start`].
    pub fn start_with_router(config: ServeConfig, router: Arc<Router>) -> Self {
        Self::start_custom(config, router, Arc::new(RegistryCache::new()))
    }

    /// Starts the service over an injected router **and** registry cache —
    /// the full seam: [`RegistryCache::with_factory`] lets tests and
    /// benches add synthetic engines (an always-stall gate, a sleeper) to
    /// the table, and this constructor routes lanes through them.
    ///
    /// # Panics
    ///
    /// As [`Service::start`].
    pub fn start_custom(
        config: ServeConfig,
        router: Arc<Router>,
        registries: Arc<RegistryCache>,
    ) -> Self {
        assert!(
            config.max_lanes >= 1,
            "a batching window needs max_lanes >= 1"
        );
        assert!(config.workers >= 1, "a lane needs at least one worker");
        Self {
            lanes: Mutex::new(LaneSet {
                lanes: Vec::new(),
                threads: Vec::new(),
                closed: false,
            }),
            registries,
            metrics: Arc::new(Metrics::new()),
            router,
            config,
        }
    }

    /// The lane serving `(engine, width)`, spun up on first use: its
    /// batcher and `config.workers` workers are spawned here and their
    /// handles parked in the [`LaneSet`] for shutdown to join.
    fn lane_for(&self, engine: &str, width: usize) -> Result<Arc<Lane>, SubmitError> {
        let mut set = self.lanes.lock().expect("lane set lock");
        if set.closed {
            return Err(SubmitError::Stopped);
        }
        if let Some(lane) = set
            .lanes
            .iter()
            .find(|l| l.width == width && l.engine == engine)
        {
            return Ok(Arc::clone(lane));
        }
        let lane = Arc::new(Lane {
            engine: engine.to_string(),
            width,
            ingress: ShardedQueue::new(self.config.queue_depth, INGRESS_SHARDS),
            window_lanes: AtomicUsize::new(0),
        });
        // Group-queue depth: enough that the batcher never blocks on a
        // slow worker unless every one of this lane's workers is busy
        // with a backlog.
        let groups: Arc<Queue<QueuedGroup>> = Arc::new(Queue::new(self.config.workers * 2));
        let config = self.config;

        let batcher = {
            let lane = Arc::clone(&lane);
            let groups = Arc::clone(&groups);
            std::thread::spawn(move || {
                let mut builder: LaneBuilder<Reply> = LaneBuilder::new(&lane.engine, lane.width);
                'accept: while let Some(first) = lane.ingress.pop() {
                    push_job(&mut builder, first);
                    lane.window_lanes.store(builder.lanes(), Ordering::Relaxed);
                    let deadline = Instant::now() + config.max_wait;
                    let mut open = true;
                    while builder.lanes() < config.max_lanes {
                        match lane.ingress.pop_deadline(deadline) {
                            PopResult::Item(job) => {
                                push_job(&mut builder, job);
                                lane.window_lanes.store(builder.lanes(), Ordering::Relaxed);
                            }
                            PopResult::TimedOut => break,
                            PopResult::Closed => {
                                open = false;
                                break;
                            }
                        }
                    }
                    let drained = builder.drain();
                    lane.window_lanes.store(0, Ordering::Relaxed);
                    if let Some(group) = drained {
                        let queued = QueuedGroup {
                            group,
                            enqueued: Instant::now(),
                        };
                        if groups.push(queued).is_err() {
                            break 'accept;
                        }
                    }
                    if !open {
                        break;
                    }
                }
                groups.close();
            })
        };

        let mut threads = Vec::with_capacity(config.workers + 1);
        threads.push(batcher);
        for _ in 0..config.workers {
            let groups = Arc::clone(&groups);
            let registries = Arc::clone(&self.registries);
            let metrics = Arc::clone(&self.metrics);
            let router = Arc::clone(&self.router);
            let executor = Executor::new(config.exec_threads);
            threads.push(std::thread::spawn(move || {
                while let Some(QueuedGroup { group, enqueued }) = groups.pop() {
                    let registry = registries.at(group.width);
                    let engine = registry
                        .lookup(&group.engine)
                        .expect("engine validated at submit time or routed");
                    let out = executor.run(engine, &group.a, &group.b);
                    let micros = u64::try_from(enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
                    metrics.record_group(&group.engine, out.lanes() as u64, out.stalls());
                    // Every group feeds the router — named traffic too —
                    // so `auto` estimates warm up from whatever runs.
                    router.record(
                        &group.engine,
                        group.width,
                        out.lanes() as u64,
                        out.stalls(),
                        micros,
                    );
                    for (l, reply) in group.tags.into_iter().enumerate() {
                        reply(AddResult {
                            sum: out.sum.lane(l),
                            cout: out.cout(l),
                            cycles: out.cycles(l),
                        });
                    }
                }
            }));
        }

        set.lanes.push(Arc::clone(&lane));
        set.threads.append(&mut threads);
        Ok(lane)
    }

    /// Snapshots the live counters the in-band `STATS` command reports:
    /// per-lane queue depth and window occupancy (and their sums, the
    /// global `queue_depth`/`window_lanes`), the slab word width, and
    /// per-engine served-lane/stall totals.
    ///
    /// The snapshot is advisory, not transactional: the queue depths and
    /// window occupancies move while it is taken. Engine totals are exact —
    /// a group's lanes and stalls are recorded by the worker that ran it,
    /// before its replies fire.
    pub fn stats(&self) -> StatsReport {
        let engines = self
            .metrics
            .engines
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(name, lanes, stalls, groups)| EngineStats {
                name: name.clone(),
                lanes: *lanes,
                stalls: *stalls,
                groups: *groups,
            })
            .collect();
        let lanes: Vec<LaneStats> = self
            .lanes
            .lock()
            .expect("lane set lock")
            .lanes
            .iter()
            .map(|lane| LaneStats {
                engine: lane.engine.clone(),
                width: lane.width,
                depth: lane.ingress.len(),
                occupancy: lane.window_lanes.load(Ordering::Relaxed),
            })
            .collect();
        StatsReport {
            queue_depth: lanes.iter().map(|l| l.depth).sum(),
            window_lanes: lanes.iter().map(|l| l.occupancy).sum(),
            max_lanes: self.config.max_lanes,
            word_bits: DefaultWord::LANES,
            slo_micros: self.router.slo(),
            proto_text: self.metrics.proto_text.load(Ordering::Relaxed),
            proto_bin: self.metrics.proto_bin.load(Ordering::Relaxed),
            lanes,
            engines,
            routes: self.router.routes(),
        }
    }

    /// Counts one answered text-protocol request. Connection handlers call
    /// this per non-empty line (malformed ones included — they are
    /// answered too); in-process submissions count as neither protocol.
    pub fn note_text_request(&self) {
        self.metrics.proto_text.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one answered binary frame; the `HELLO` upgrade line itself
    /// is neither text nor binary traffic.
    pub fn note_binary_request(&self) {
        self.metrics.proto_bin.fetch_add(1, Ordering::Relaxed);
    }

    /// The registry cache — the `ENGINES` command and validation share it.
    pub fn registries(&self) -> &Arc<RegistryCache> {
        &self.registries
    }

    /// The `auto` router — the `SLO` command and the routing tests share
    /// it.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// The current p99 budget of the `auto` router (`None` = off).
    pub fn slo(&self) -> Option<u64> {
        self.router.slo()
    }

    /// Replaces the p99 budget; affects the next routed `auto` request.
    pub fn set_slo(&self, micros: Option<u64>) {
        self.router.set_slo(micros);
    }

    /// Resolves a submitted engine name to the concrete engine whose lane
    /// runs it: `auto` asks the [`Router`] (per request, with the current
    /// estimates — so consecutive `auto` requests can land on different
    /// lanes as estimates move), anything else must be a registry name at
    /// the width.
    fn canonical_engine(&self, engine: &str, width: usize) -> Result<String, SubmitError> {
        if engine == AUTO_ENGINE {
            return Ok(self
                .router
                .route(width)
                .expect("the registry lists engines at every valid width")
                .engine);
        }
        Ok(self
            .registries
            .at(width)
            .lookup(engine)
            .map_err(SubmitError::UnknownEngine)?
            .name()
            .to_string())
    }

    /// Queues one validated job on the `(engine, width)` lane, spinning
    /// the lane up on first use.
    fn enqueue(&self, engine: String, width: usize, job: Job) -> Result<(), SubmitError> {
        let lane = self.lane_for(&engine, width)?;
        lane.ingress
            .push(shard_hint(), job)
            .map_err(|_| SubmitError::Stopped)
    }

    /// Validates and queues one addition; `reply` fires from a worker once
    /// the lane's issue group has run. Blocks while the lane's ingress
    /// queue is full (the service's backpressure). The engine may be
    /// `auto`: the request is then routed to a concrete engine's lane here,
    /// via the [`Router`].
    ///
    /// # Errors
    ///
    /// Rejects before queueing on unknown engine, bad width, mismatched
    /// operand widths, or a stopped service — the reply callback is
    /// dropped unfired in those cases, so transports answer errors inline.
    pub fn submit(&self, engine: &str, a: UBig, b: UBig, reply: Reply) -> Result<(), SubmitError> {
        if a.width() != b.width() {
            return Err(SubmitError::WidthMismatch(a.width(), b.width()));
        }
        let width = a.width();
        if !WIDTH_RANGE.contains(&width) {
            return Err(SubmitError::BadWidth(width));
        }
        let engine = self.canonical_engine(engine, width)?;
        self.enqueue(
            engine,
            width,
            Job {
                operands: Operands::Values { a, b },
                reply,
            },
        )
    }

    /// Validates and queues one addition whose operands are raw
    /// little-endian limb runs — the zero-copy ingress of the binary
    /// protocol. No [`UBig`] is built anywhere on this path: the limbs are
    /// validated in place here and the lane's batcher scatters them
    /// straight into the slab layout ([`LaneBuilder::push_limbs`]).
    ///
    /// # Errors
    ///
    /// As [`Service::submit`], plus [`SubmitError::BadLimbs`] when either
    /// operand is not exactly `width.div_ceil(64)` limbs or has bits set
    /// at or above `width`.
    pub fn submit_limbs(
        &self,
        engine: &str,
        width: usize,
        a: Vec<u64>,
        b: Vec<u64>,
        reply: Reply,
    ) -> Result<(), SubmitError> {
        if !WIDTH_RANGE.contains(&width) {
            return Err(SubmitError::BadWidth(width));
        }
        let nl = width.div_ceil(64);
        for (name, limbs) in [("a", &a), ("b", &b)] {
            if limbs.len() != nl {
                return Err(SubmitError::BadLimbs(format!(
                    "operand {name} is {} limbs, width {width} needs {nl}",
                    limbs.len()
                )));
            }
            let used = width % 64;
            if used != 0 && limbs[nl - 1] >> used != 0 {
                return Err(SubmitError::BadLimbs(format!(
                    "operand {name} has bits set at or above width {width}"
                )));
            }
        }
        let engine = self.canonical_engine(engine, width)?;
        self.enqueue(
            engine,
            width,
            Job {
                operands: Operands::Limbs { a, b },
                reply,
            },
        )
    }

    /// Validates and queues one whole reduction program: the program's
    /// carry-save pair ([`Program::csa_pair_scalar`]) is computed here in
    /// the submitter — xor/majority word sweeps, no carry chains — and
    /// queued as a **single lane**, so the program's one carry-resolve
    /// rides the batching window like any `ADD` and the reply's `cycles`
    /// are that resolve's 1 or 2. The reply's `sum` is the exact wrapped
    /// program result; its `cout` is the final resolve's carry out.
    ///
    /// # Errors
    ///
    /// As [`Service::submit`], plus [`SubmitError::BadOperandCount`] when
    /// `inputs` does not match the program's input count.
    pub fn submit_program(
        &self,
        engine: &str,
        program: &Program,
        inputs: &[UBig],
        reply: Reply,
    ) -> Result<(), SubmitError> {
        if inputs.len() != program.inputs() {
            return Err(SubmitError::BadOperandCount(inputs.len()));
        }
        let width = inputs[0].width();
        for i in &inputs[1..] {
            if i.width() != width {
                return Err(SubmitError::WidthMismatch(width, i.width()));
            }
        }
        if !WIDTH_RANGE.contains(&width) {
            return Err(SubmitError::BadWidth(width));
        }
        let engine = self.canonical_engine(engine, width)?;
        let (x, y) = program.csa_pair_scalar(inputs);
        self.enqueue(
            engine,
            width,
            Job {
                operands: Operands::Values { a: x, b: y },
                reply,
            },
        )
    }

    /// Validates and queues one n-operand sum — [`Service::submit_program`]
    /// with the [`Program::sum`] shape.
    ///
    /// # Errors
    ///
    /// As [`Service::submit_program`];
    /// [`SubmitError::BadOperandCount`] when the operand count is outside
    /// [`OPERAND_RANGE`].
    pub fn submit_sum(
        &self,
        engine: &str,
        operands: &[UBig],
        reply: Reply,
    ) -> Result<(), SubmitError> {
        let program = Program::sum(operands.len())
            .map_err(|_| SubmitError::BadOperandCount(operands.len()))?;
        self.submit_program(engine, &program, operands, reply)
    }

    /// Submits one n-operand sum and blocks until its group has run — the
    /// in-process equivalent of one `SUM` round trip.
    ///
    /// # Errors
    ///
    /// Fails on the conditions of [`Service::submit_sum`], or with
    /// [`SubmitError::Stopped`] if the service shuts down mid-flight.
    pub fn sum_blocking(&self, engine: &str, operands: &[UBig]) -> Result<AddResult, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.submit_sum(
            engine,
            operands,
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        )?;
        rx.recv().map_err(|_| SubmitError::Stopped)
    }

    /// Submits one addition and blocks until its group has run — the
    /// in-process equivalent of one `ADD` round trip.
    ///
    /// # Errors
    ///
    /// Fails on the conditions of [`Service::submit`], or with
    /// [`SubmitError::Stopped`] if the service shuts down mid-flight.
    pub fn add_blocking(&self, engine: &str, a: UBig, b: UBig) -> Result<AddResult, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.submit(
            engine,
            a,
            b,
            Box::new(move |result| {
                let _ = tx.send(result);
            }),
        )?;
        rx.recv().map_err(|_| SubmitError::Stopped)
    }

    /// Closes every lane's ingress and collects the join handles — the
    /// shared half of [`Service::shutdown`] and `Drop`.
    fn close_lanes(&self) -> Vec<JoinHandle<()>> {
        let mut set = self.lanes.lock().expect("lane set lock");
        set.closed = true;
        for lane in &set.lanes {
            lane.ingress.close();
        }
        std::mem::take(&mut set.threads)
    }

    /// Stops accepting requests, answers everything already accepted, and
    /// joins every lane's batcher and workers.
    pub fn shutdown(self) {
        for handle in self.close_lanes() {
            handle.join().expect("service thread panicked");
        }
    }
}

impl Drop for Service {
    /// A dropped (not shut down) service still closes the lanes and joins,
    /// so no thread outlives the handle.
    fn drop(&mut self) {
        for handle in self.close_lanes() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> ServeConfig {
        ServeConfig {
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn add_blocking_matches_scalar_reference() {
        let service = Service::start(fast_config());
        let registry = Registry::for_width(32);
        for (i, engine) in ["ripple", "carry-select", "vlcsa1", "vlcsa2"]
            .into_iter()
            .enumerate()
        {
            let a = UBig::from_u128(0x9000_0000 + i as u128, 32);
            let b = UBig::from_u128(0x7fff_ffff, 32);
            let out = service.add_blocking(engine, a.clone(), b.clone()).unwrap();
            let one = registry.get(engine).unwrap().add_one(&a, &b);
            assert_eq!(out.sum, one.sum, "{engine}");
            assert_eq!(out.cout, one.cout, "{engine}");
            assert_eq!(out.cycles, one.cycles, "{engine}");
        }
        service.shutdown();
    }

    #[test]
    fn submit_rejects_bad_requests_before_queueing() {
        let service = Service::start(fast_config());
        let reply: Reply = Box::new(|_| panic!("reply must not fire on rejection"));
        match service.submit("no-such", UBig::zero(8), UBig::zero(8), reply) {
            Err(SubmitError::UnknownEngine(e)) => {
                assert_eq!(e.requested, "no-such");
                assert!(e.known.contains(&"vlcsa1"));
            }
            other => panic!("{other:?}"),
        }
        let reply: Reply = Box::new(|_| panic!("reply must not fire on rejection"));
        assert_eq!(
            service
                .submit("ripple", UBig::zero(8), UBig::zero(16), reply)
                .err(),
            Some(SubmitError::WidthMismatch(8, 16))
        );
        service.shutdown();
    }

    #[test]
    fn sum_blocking_is_the_fold_and_one_lane() {
        let service = Service::start(fast_config());
        let operands: Vec<UBig> = (1..=8u128).map(|v| UBig::from_u128(v << 28, 32)).collect();
        let expect = operands[1..]
            .iter()
            .fold(operands[0].clone(), |acc, o| acc.wrapping_add(o));
        let out = service.sum_blocking("vlcsa1", &operands).unwrap();
        assert_eq!(out.sum, expect);
        assert!(out.cycles == 1 || out.cycles == 2);
        // The whole reduction was one lane of vlcsa1, not eight.
        let stats = service.stats();
        assert_eq!(stats.engine("vlcsa1").unwrap().lanes, 1);
        service.shutdown();
    }

    #[test]
    fn submit_program_validates_before_queueing() {
        let service = Service::start(fast_config());
        let program = Program::from_spec("i0+i1,t0+t0", 2).unwrap();
        let ops = [UBig::from_u128(3, 16), UBig::from_u128(4, 16)];
        let out = service
            .submit_program("carry-select", &program, &ops, Box::new(|_| {}))
            .is_ok();
        assert!(out);
        let reply: Reply = Box::new(|_| panic!("reply must not fire on rejection"));
        assert_eq!(
            service
                .submit_program("carry-select", &program, &ops[..1], reply)
                .err(),
            Some(SubmitError::BadOperandCount(1))
        );
        let reply: Reply = Box::new(|_| panic!("reply must not fire on rejection"));
        assert_eq!(
            service
                .submit_program(
                    "carry-select",
                    &program,
                    &[UBig::zero(16), UBig::zero(8)],
                    reply
                )
                .err(),
            Some(SubmitError::WidthMismatch(16, 8))
        );
        let reply: Reply = Box::new(|_| panic!("reply must not fire on rejection"));
        assert!(matches!(
            service.submit_sum("no-such", &ops, reply).err(),
            Some(SubmitError::UnknownEngine(_))
        ));
        service.shutdown();
    }

    #[test]
    fn submit_limbs_matches_submit_and_validates_in_place() {
        let service = Service::start(fast_config());
        let a = UBig::from_u128((1u128 << 100) - 3, 100);
        let b = UBig::from_u128(0xdead_beef_cafe, 100);
        let (tx, rx) = mpsc::channel();
        service
            .submit_limbs(
                "vlcsa1",
                100,
                a.limbs().to_vec(),
                b.limbs().to_vec(),
                Box::new(move |result| {
                    let _ = tx.send(result);
                }),
            )
            .unwrap();
        let out = rx.recv().unwrap();
        let reference = service.add_blocking("vlcsa1", a, b).unwrap();
        assert_eq!(out, reference);
        // Wrong limb count and stray high bits fail before queueing.
        let reply: Reply = Box::new(|_| panic!("reply must not fire on rejection"));
        assert!(matches!(
            service.submit_limbs("vlcsa1", 100, vec![1], vec![0, 0], reply),
            Err(SubmitError::BadLimbs(_))
        ));
        let reply: Reply = Box::new(|_| panic!("reply must not fire on rejection"));
        assert!(matches!(
            service.submit_limbs("vlcsa1", 100, vec![0, 1 << 36], vec![0, 0], reply),
            Err(SubmitError::BadLimbs(_))
        ));
        let reply: Reply = Box::new(|_| panic!("reply must not fire on rejection"));
        assert!(matches!(
            service.submit_limbs("no-such", 64, vec![1], vec![2], reply),
            Err(SubmitError::UnknownEngine(_))
        ));
        service.shutdown();
    }

    #[test]
    fn proto_counters_start_at_zero_and_count_notes() {
        let service = Service::start(fast_config());
        let stats = service.stats();
        assert_eq!((stats.proto_text, stats.proto_bin), (0, 0));
        service.note_text_request();
        service.note_text_request();
        service.note_binary_request();
        let stats = service.stats();
        assert_eq!((stats.proto_text, stats.proto_bin), (2, 1));
        service.shutdown();
    }

    #[test]
    fn shutdown_answers_accepted_requests() {
        let service = Service::start(ServeConfig {
            // A long window: shutdown must flush it early, not wait it out.
            max_wait: Duration::from_secs(30),
            ..ServeConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        for i in 0..10u64 {
            let tx = tx.clone();
            service
                .submit(
                    "vlcsa2",
                    UBig::from_u128(i as u128, 64),
                    UBig::from_u128(1, 64),
                    Box::new(move |result| {
                        let _ = tx.send((i, result));
                    }),
                )
                .unwrap();
        }
        let start = Instant::now();
        service.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown waited for the batching window instead of flushing"
        );
        let mut answered: Vec<(u64, AddResult)> = rx.try_iter().collect();
        answered.sort_by_key(|(i, _)| *i);
        assert_eq!(answered.len(), 10, "every accepted request is answered");
        for (i, result) in answered {
            assert_eq!(result.sum.to_u128(), Some(i as u128 + 1));
        }
    }

    #[test]
    fn mixed_widths_and_engines_in_one_window() {
        let service = Service::start(ServeConfig {
            max_wait: Duration::from_millis(20),
            max_lanes: 512,
            ..ServeConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        let shapes = [("ripple", 16usize), ("vlcsa1", 64), ("kogge-stone", 100)];
        for i in 0..90u64 {
            let (engine, width) = shapes[i as usize % shapes.len()];
            let tx = tx.clone();
            service
                .submit(
                    engine,
                    UBig::from_u128(i as u128, width),
                    UBig::from_u128(i as u128 * 3, width),
                    Box::new(move |result| {
                        let _ = tx.send((i, result));
                    }),
                )
                .unwrap();
        }
        drop(tx);
        let mut seen = 0;
        while let Ok((i, result)) = rx.recv_timeout(Duration::from_secs(20)) {
            assert_eq!(result.sum.to_u128(), Some(i as u128 * 4), "request {i}");
            seen += 1;
            if seen == 90 {
                break;
            }
        }
        assert_eq!(seen, 90);
        // Three distinct shapes spun up three distinct lanes, each with
        // idle gauges once everything is answered.
        let stats = service.stats();
        assert_eq!(stats.lanes.len(), 3, "{:?}", stats.lanes);
        for (engine, width) in shapes {
            let lane = stats.lane(engine, width).expect(engine);
            assert_eq!((lane.depth, lane.occupancy), (0, 0), "{engine}");
        }
        service.shutdown();
    }

    #[test]
    fn lanes_spin_up_on_demand_and_auto_resolves_to_a_concrete_lane() {
        let service = Service::start(fast_config());
        assert!(
            service.stats().lanes.is_empty(),
            "idle service has no lanes"
        );
        service
            .add_blocking("ripple", UBig::from_u128(1, 32), UBig::from_u128(2, 32))
            .unwrap();
        let stats = service.stats();
        assert_eq!(stats.lanes.len(), 1);
        assert_eq!(stats.lanes[0].engine, "ripple");
        assert_eq!(stats.lanes[0].width, 32);
        // `auto` is resolved before lanes: no lane is ever named `auto`.
        service
            .add_blocking("auto", UBig::from_u128(3, 32), UBig::from_u128(4, 32))
            .unwrap();
        let stats = service.stats();
        assert!(
            stats.lanes.iter().all(|l| l.engine != AUTO_ENGINE),
            "{:?}",
            stats.lanes
        );
        // The routed request really ran: the route table names width 32.
        assert!(
            stats.routes.iter().any(|r| r.width == 32),
            "{:?}",
            stats.routes
        );
        service.shutdown();
    }

    #[test]
    fn same_engine_different_widths_are_different_lanes() {
        let service = Service::start(fast_config());
        for width in [16usize, 64, 100] {
            service
                .add_blocking(
                    "vlcsa1",
                    UBig::from_u128(5, width),
                    UBig::from_u128(6, width),
                )
                .unwrap();
        }
        let stats = service.stats();
        assert_eq!(stats.lanes.len(), 3, "{:?}", stats.lanes);
        for width in [16usize, 64, 100] {
            assert!(stats.lane("vlcsa1", width).is_some(), "width {width}");
        }
        // One engine counter accumulates across its width lanes.
        assert_eq!(stats.engine("vlcsa1").unwrap().lanes, 3);
        service.shutdown();
    }
}

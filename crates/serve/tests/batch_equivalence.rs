//! Batching-equivalence property: any interleaving of requests through the
//! service layer yields bit-identical sums, carry-outs and cycle counts to
//! calling `Executor::run` directly on the same operands.
//!
//! The service layer may split one client's stream across many issue
//! groups (the batching window), pack many engines' requests into one
//! window, and complete groups on different workers in any order. None of
//! that may change a single lane: every per-request answer is a pure
//! function of `(engine, a, b)`. The reference below buckets the same
//! requests per `(engine, width)` — in submission order, like the
//! `GroupBuilder` does — and runs each bucket through the executor in one
//! shot; bucket sizes are arbitrary, so partial (<64-lane) final chunks
//! are exercised constantly.

use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

use bitnum::batch::WideSlab;
use bitnum::rng::{RandomBits, Xoshiro256};
use bitnum::UBig;
use proptest::prelude::*;
use vlcsa::engine::Registry;
use vlcsa::exec::Executor;
use vlcsa::program::{Operand, Program};
use vlcsa_serve::{AddResult, Client, ServeConfig, Server, Service};

const ENGINES: [&str; 9] = [
    "ripple",
    "cla4",
    "carry-select",
    "carry-skip",
    "conditional-sum",
    "kogge-stone",
    "vlsa",
    "vlcsa1",
    "vlcsa2",
];
const WIDTHS: [usize; 3] = [24, 64, 100];

struct Req {
    engine: &'static str,
    a: UBig,
    b: UBig,
}

fn random_requests(seed: u64, count: usize) -> Vec<Req> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let engine = ENGINES[(rng.next_u64() % ENGINES.len() as u64) as usize];
            let width = WIDTHS[(rng.next_u64() % WIDTHS.len() as u64) as usize];
            Req {
                engine,
                a: UBig::random(width, &mut rng),
                b: UBig::random(width, &mut rng),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random request streams, random batching-window sizes (down to
    /// 1-lane windows, up to windows larger than a chunk): the service's
    /// per-request answers equal a direct per-bucket `Executor::run`.
    #[test]
    fn service_equals_direct_executor(
        (seed, count, max_lanes) in (any::<u64>(), 1usize..140, 1usize..97)
    ) {
        let requests = random_requests(seed, count);
        let service = Service::start(ServeConfig {
            max_lanes,
            max_wait: Duration::from_micros(200),
            workers: 3,
            exec_threads: 2,
            queue_depth: 32,
            route: vlcsa::route::RouteConfig::default(),
        });
        let (tx, rx) = mpsc::channel::<(usize, AddResult)>();
        for (i, req) in requests.iter().enumerate() {
            let tx = tx.clone();
            service
                .submit(
                    req.engine,
                    req.a.clone(),
                    req.b.clone(),
                    Box::new(move |result| {
                        let _ = tx.send((i, result));
                    }),
                )
                .expect("valid request");
        }
        let mut answers: Vec<Option<AddResult>> = vec![None; requests.len()];
        for _ in 0..requests.len() {
            let (i, result) = rx
                .recv_timeout(Duration::from_secs(30))
                .expect("every request is answered");
            prop_assert!(answers[i].is_none(), "request {} answered twice", i);
            answers[i] = Some(result);
        }
        service.shutdown();

        // Reference: bucket identically (per engine+width, submission
        // order), one direct executor run per bucket.
        let mut buckets: Vec<((&'static str, usize), Vec<usize>)> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            let key = (req.engine, req.a.width());
            match buckets.iter_mut().find(|(k, _)| *k == key) {
                Some((_, idxs)) => idxs.push(i),
                None => buckets.push((key, vec![i])),
            }
        }
        let mut registries: HashMap<usize, Registry> = HashMap::new();
        let executor = Executor::new(2);
        for ((engine, width), idxs) in buckets {
            let registry = registries
                .entry(width)
                .or_insert_with(|| Registry::for_width(width));
            let engine = registry.lookup(engine).expect("known engine");
            let a: Vec<UBig> = idxs.iter().map(|&i| requests[i].a.clone()).collect();
            let b: Vec<UBig> = idxs.iter().map(|&i| requests[i].b.clone()).collect();
            let direct = executor.run(engine, &WideSlab::from_lanes(&a), &WideSlab::from_lanes(&b));
            for (lane, &i) in idxs.iter().enumerate() {
                let served = answers[i].as_ref().expect("answered above");
                prop_assert_eq!(
                    &served.sum,
                    &direct.sum.lane(lane),
                    "sum of request {} ({} w{})", i, engine.name(), width
                );
                prop_assert_eq!(served.cout, direct.cout(lane), "cout of request {}", i);
                prop_assert_eq!(served.cycles, direct.cycles(lane), "cycles of request {}", i);
            }
        }
    }

    /// Random server-submitted programs — random DAG shapes with reused
    /// temporaries, random engines and widths, interleaved with plain adds
    /// in shared batching windows — answer exactly the scalar fold
    /// evaluation, and each program's latency is its single carry-resolve
    /// (the scalar engine's cycles on the program's carry-save pair).
    #[test]
    fn served_programs_equal_scalar_fold(
        (seed, count, max_lanes) in (any::<u64>(), 1usize..50, 1usize..97)
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut programs: Vec<(&'static str, usize, Program, Vec<UBig>)> = Vec::new();
        for _ in 0..count {
            let engine = ENGINES[(rng.next_u64() % ENGINES.len() as u64) as usize];
            let width = WIDTHS[(rng.next_u64() % WIDTHS.len() as u64) as usize];
            let inputs = 1 + (rng.next_u64() % 8) as usize;
            let steps = (rng.next_u64() % 10) as usize;
            let mut program = Program::new(inputs).expect("valid input count");
            for s in 0..steps {
                let draw = |rng: &mut Xoshiro256| {
                    let pick = (rng.next_u64() % (inputs + s) as u64) as usize;
                    if pick < inputs {
                        Operand::Input(pick)
                    } else {
                        Operand::Temp(pick - inputs)
                    }
                };
                let (x, y) = (draw(&mut rng), draw(&mut rng));
                program.push(x, y).expect("operands in range");
            }
            let operands: Vec<UBig> =
                (0..inputs).map(|_| UBig::random(width, &mut rng)).collect();
            programs.push((engine, width, program, operands));
        }
        let service = Service::start(ServeConfig {
            max_lanes,
            max_wait: Duration::from_micros(200),
            workers: 3,
            exec_threads: 2,
            queue_depth: 32,
            route: vlcsa::route::RouteConfig::default(),
        });
        let (tx, rx) = mpsc::channel::<(usize, AddResult)>();
        for (i, (engine, _, program, operands)) in programs.iter().enumerate() {
            let tx = tx.clone();
            service
                .submit_program(
                    engine,
                    program,
                    operands,
                    Box::new(move |result| {
                        let _ = tx.send((i, result));
                    }),
                )
                .expect("valid program");
            // Interleave a plain add so windows mix both request kinds.
            if i % 3 == 0 {
                let width = programs[i].1;
                let a = UBig::random(width, &mut rng);
                let b = UBig::random(width, &mut rng);
                service
                    .submit(programs[i].0, a, b, Box::new(|_| {}))
                    .expect("valid add");
            }
        }
        let mut answers: Vec<Option<AddResult>> = vec![None; programs.len()];
        for _ in 0..programs.len() {
            let (i, result) = rx
                .recv_timeout(Duration::from_secs(30))
                .expect("every program is answered");
            prop_assert!(answers[i].is_none(), "program {} answered twice", i);
            answers[i] = Some(result);
        }
        service.shutdown();

        let mut registries: HashMap<usize, Registry> = HashMap::new();
        for (i, (engine, width, program, operands)) in programs.iter().enumerate() {
            let served = answers[i].as_ref().expect("answered above");
            prop_assert_eq!(
                &served.sum,
                &program.eval_scalar(operands),
                "program {} ({} w{}, spec `{}`)", i, engine, width, program.spec()
            );
            let registry = registries
                .entry(*width)
                .or_insert_with(|| Registry::for_width(*width));
            let (x, y) = program.csa_pair_scalar(operands);
            let resolve = registry.get(engine).expect("known engine").add_one(&x, &y);
            prop_assert_eq!(served.cycles, resolve.cycles, "cycles of program {}", i);
            prop_assert_eq!(served.cout, resolve.cout, "cout of program {}", i);
        }
    }

    /// Any interleaving served via `auto` is bit-identical to `add_one`
    /// regardless of which engine the router picked: every registry
    /// family computes exact addition, so the routing decision is
    /// unobservable in sums and carry-outs by construction (only the
    /// cycle count may differ, and it stays in the 1-or-2 envelope).
    /// Interleaves explicitly-named requests so `auto` groups and named
    /// groups share batching windows.
    #[test]
    fn auto_routing_is_bit_identical_to_add_one(
        (seed, count, max_lanes) in (any::<u64>(), 1usize..140, 1usize..97)
    ) {
        let requests = random_requests(seed, count);
        let service = Service::start(ServeConfig {
            max_lanes,
            max_wait: Duration::from_micros(200),
            workers: 3,
            exec_threads: 2,
            queue_depth: 32,
            route: vlcsa::route::RouteConfig::default(),
        });
        let (tx, rx) = mpsc::channel::<(usize, AddResult)>();
        for (i, req) in requests.iter().enumerate() {
            // Two of three requests delegate the engine choice; the rest
            // keep their concrete name, sharing the same windows.
            let engine = if i % 3 == 0 { req.engine } else { "auto" };
            let tx = tx.clone();
            service
                .submit(
                    engine,
                    req.a.clone(),
                    req.b.clone(),
                    Box::new(move |result| {
                        let _ = tx.send((i, result));
                    }),
                )
                .expect("valid request");
        }
        let mut answers: Vec<Option<AddResult>> = vec![None; requests.len()];
        for _ in 0..requests.len() {
            let (i, result) = rx
                .recv_timeout(Duration::from_secs(30))
                .expect("every request is answered");
            prop_assert!(answers[i].is_none(), "request {} answered twice", i);
            answers[i] = Some(result);
        }
        service.shutdown();

        let mut registries: HashMap<usize, Registry> = HashMap::new();
        for (i, req) in requests.iter().enumerate() {
            let served = answers[i].as_ref().expect("answered above");
            let width = req.a.width();
            let registry = registries
                .entry(width)
                .or_insert_with(|| Registry::for_width(width));
            // `add_one` of any engine is exact addition; use the named
            // engine as the reference regardless of what `auto` ran.
            let reference = registry
                .get(req.engine)
                .expect("known engine")
                .add_one(&req.a, &req.b);
            prop_assert_eq!(&served.sum, &reference.sum, "sum of request {} (w{})", i, width);
            prop_assert_eq!(served.cout, reference.cout, "cout of request {}", i);
            prop_assert!(
                served.cycles == 1 || served.cycles == 2,
                "cycles of request {} outside the 1-or-2 envelope: {}", i, served.cycles
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Wire-format interop: text and binary clients concurrently against
    /// one real TCP server, each client's encoding chosen at random (with
    /// both encodings always represented), mixed engines and widths
    /// including `auto` and multi-limb operands. Every answer — whichever
    /// framing carried it — is bit-identical to the scalar reference, so
    /// the limb ingress path and the hex path are observationally the
    /// same arithmetic.
    #[test]
    fn text_and_binary_clients_interop_bit_identically(
        (seed, count) in (any::<u64>(), 1usize..40)
    ) {
        let server = Server::start(
            "127.0.0.1:0",
            ServeConfig {
                max_wait: Duration::from_micros(200),
                ..ServeConfig::default()
            },
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        const CLIENTS: usize = 4;

        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut rng = Xoshiro256::seed_from_u64(seed ^ (0x9E3779B9 + c as u64));
                    // Clients 0 and 1 pin one encoding each so every case
                    // exercises both; the rest flip a coin.
                    let binary = match c {
                        0 => true,
                        1 => false,
                        _ => rng.next_u64() & 1 == 1,
                    };
                    let mut client = if binary {
                        Client::connect_binary(addr).expect("binary handshake")
                    } else {
                        Client::connect(addr).expect("text connect")
                    };
                    let mut expected = HashMap::new();
                    for _ in 0..count {
                        let engine = if rng.next_u64().is_multiple_of(3) {
                            "auto"
                        } else {
                            ENGINES[(rng.next_u64() % ENGINES.len() as u64) as usize]
                        };
                        let width = WIDTHS[(rng.next_u64() % WIDTHS.len() as u64) as usize];
                        let a = UBig::random(width, &mut rng);
                        let b = UBig::random(width, &mut rng);
                        let seq = client.submit(engine, &a, &b).expect("submit");
                        expected.insert(seq, (engine, a, b));
                    }
                    let mut registries: HashMap<usize, Registry> = HashMap::new();
                    for _ in 0..count {
                        let (seq, response) = client.recv().expect("recv");
                        let response =
                            response.unwrap_or_else(|e| panic!("seq {seq}: {e:?}"));
                        let (engine, a, b) = expected.remove(&seq).expect("known seq");
                        let width = a.width();
                        let registry = registries
                            .entry(width)
                            .or_insert_with(|| Registry::for_width(width));
                        // Every registry family computes exact addition, so
                        // `ripple` is a valid sum/cout reference even when
                        // `auto` delegated the choice.
                        let name = if engine == "auto" { "ripple" } else { engine };
                        let one = registry.get(name).expect("known engine").add_one(&a, &b);
                        let enc = if binary { "binary" } else { "text" };
                        assert_eq!(response.sum, one.sum, "{enc} client {c} seq {seq}");
                        assert_eq!(response.cout, one.cout, "{enc} client {c} seq {seq}");
                        if engine == "auto" {
                            assert!(
                                response.cycles == 1 || response.cycles == 2,
                                "{enc} client {c} seq {seq}: cycles {}",
                                response.cycles
                            );
                        } else {
                            assert_eq!(response.cycles, one.cycles, "{enc} client {c} seq {seq}");
                        }
                    }
                    client.close();
                })
            })
            .collect();
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
        server.shutdown();
    }
}

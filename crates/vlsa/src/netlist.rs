//! Gate-level VLSA: speculative stage, detection and recovery netlists.
//!
//! The generated design exposes (for an `n`-bit adder with chain length
//! `l`):
//!
//! * `sum`, `cout` — the speculative outputs (truncated prefix network of
//!   depth `⌈log₂ l⌉ (+1)`);
//! * `err` — the propagate-run detector (`OR` over all full-window group
//!   propagates, which the speculative stage computes anyway — the sharing
//!   Verma et al. describe);
//! * `sum_exact`, `cout_exact` — the recovery outputs: the same prefix
//!   planes *completed* to full width by continued doubling (the
//!   second-cycle completion stage).
//!
//! Timing the three output groups of one netlist with
//! [`gatesim::sta::analyze`] yields exactly the three delays Fig. 7.4
//! plots (speculation, detection, recovery).

use adders::pg::{self, GroupPg};
use gatesim::{Netlist, NetlistBuilder, Signal};

/// Builds only the speculative stage (the "speculative adder in VLSA" that
/// Figs. 7.2/7.3 compare): `a`, `b` → `sum`, `cout`.
///
/// # Panics
///
/// Panics if `chain_len == 0` or `chain_len > width`.
pub fn vlsa_spec_netlist(width: usize, chain_len: usize) -> Netlist {
    let full = vlsa_netlist(width, chain_len);
    // Rebuild keeping only the speculative outputs; the sweep in `finish`
    // removes the detection and completion cones.
    let mut b = NetlistBuilder::new(format!("vlsa_spec_{width}_l{chain_len}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let mut map: Vec<Signal> = Vec::with_capacity(full.nodes().len());
    for node in full.nodes() {
        let s = match node {
            gatesim::Node::Input { bus, bit } => {
                let src = if *bus == 0 { &a } else { &bb };
                src[*bit as usize]
            }
            gatesim::Node::Cell { kind, ins } => {
                let mapped: Vec<Signal> = ins
                    .iter()
                    .take(kind.arity())
                    .map(|s| map[s.index()])
                    .collect();
                b.cell(*kind, &mapped)
            }
        };
        map.push(s);
    }
    let sum_bus = full.output("sum").expect("sum output");
    let sum: Vec<Signal> = sum_bus.signals.iter().map(|s| map[s.index()]).collect();
    b.output_bus("sum", &sum);
    let cout = full.output("cout").expect("cout output").signals[0];
    b.output_bit("cout", map[cout.index()]);
    b.finish()
}

/// Builds the full VLSA netlist (speculation + detection + recovery).
///
/// # Panics
///
/// Panics if `chain_len == 0` or `chain_len > width`.
pub fn vlsa_netlist(width: usize, chain_len: usize) -> Netlist {
    assert!(
        chain_len >= 1 && chain_len <= width,
        "chain length out of range"
    );
    let mut b = NetlistBuilder::new(format!("vlsa_{width}_l{chain_len}"));
    let a = b.input_bus("a", width);
    let bb = b.input_bus("b", width);
    let plane = pg::pg_bits(&mut b, &a, &bb);

    // --- Speculative stage: truncated prefix computation -----------------
    let mut groups: Vec<GroupPg> = plane
        .iter()
        .map(|bit| GroupPg {
            g: bit.g,
            p: Some(bit.p),
        })
        .collect();
    // Span-start tracker; positions with lo == 0 are exact and final.
    let mut lo: Vec<usize> = (0..width).collect();
    let mut window = 1usize;
    let apply_stride = |b: &mut NetlistBuilder,
                        groups: &mut Vec<GroupPg>,
                        lo: &mut Vec<usize>,
                        stride: usize,
                        window: usize| {
        let snapshot = groups.clone();
        let lo_snapshot = lo.clone();
        for pos in stride..width {
            if lo_snapshot[pos] == 0 {
                continue; // already exact
            }
            let hi = snapshot[pos];
            let low = snapshot[pos - stride];
            // Overlapped combine is exact for (P, G); keep P alive — the
            // detector and the completion stage both need it.
            groups[pos] = pg::combine(b, hi, low, true);
            lo[pos] = lo_snapshot[pos - stride];
        }
        let _ = window;
    };
    // Doubling phase up to the largest power of two <= l.
    while window * 2 <= chain_len {
        apply_stride(&mut b, &mut groups, &mut lo, window, window);
        window *= 2;
    }
    // Residual overlapped stride to reach exactly l.
    let residual = chain_len - window;
    if residual > 0 {
        apply_stride(&mut b, &mut groups, &mut lo, residual, window);
        window = chain_len;
    }

    // Speculative sums: s_i = p_i ^ c_{i-1}, spec carries are the windowed G.
    let spec_carries: Vec<Signal> = groups.iter().map(|g| g.g).collect();
    let spec_sums = pg::sum_bits(&mut b, &plane, &spec_carries, None);
    b.output_bus("sum", &spec_sums);
    b.output_bit("cout", spec_carries[width - 1]);

    // --- Detection: dedicated sliding-window propagate-run detector ------
    // Verma et al. build the detector from the raw propagate bits (its own
    // AND doubling plane — this is where VLSA's area overhead comes from),
    // flagging any full l-bit propagate window preceded by a carry-capable
    // bit (a | b).
    let mut p_plane: Vec<Signal> = plane.iter().map(|bit| bit.p).collect();
    let mut ww = 1usize;
    let and_stride = |b: &mut NetlistBuilder, p_plane: &mut Vec<Signal>, stride: usize| {
        let snapshot = p_plane.clone();
        for pos in stride..width {
            p_plane[pos] = b.and2(snapshot[pos], snapshot[pos - stride]);
        }
        // Positions below the stride fall out of the full-window domain;
        // they are excluded by the precursor indexing below.
    };
    while ww * 2 <= chain_len {
        and_stride(&mut b, &mut p_plane, ww);
        ww *= 2;
    }
    if chain_len - ww > 0 {
        and_stride(&mut b, &mut p_plane, chain_len - ww);
    }
    let mut terms = Vec::with_capacity(width.saturating_sub(chain_len));
    for i in chain_len..width {
        let carry_capable = b.or2(a[i - chain_len], bb[i - chain_len]);
        terms.push(b.and2(p_plane[i], carry_capable));
    }
    let err = b.or_many_wide(&terms);
    b.output_bit("err", err);

    // --- Recovery: complete the prefix computation by further doubling ---
    // Isolation buffers decouple the speculative outputs from the
    // completion stage's input load, as a delay-driven synthesis run would.
    let mut groups: Vec<GroupPg> = groups
        .iter()
        .map(|grp| GroupPg {
            g: b.isolation_buf(grp.g),
            p: grp.p.map(|p| b.isolation_buf(p)),
        })
        .collect();
    while window < width {
        apply_stride(&mut b, &mut groups, &mut lo, window, window);
        window *= 2;
    }
    debug_assert!(lo.iter().all(|&l0| l0 == 0), "completion must reach bit 0");
    let exact_carries: Vec<Signal> = groups.iter().map(|g| g.g).collect();
    let exact_sums = pg::sum_bits(&mut b, &plane, &exact_carries, None);
    b.output_bus("sum_exact", &exact_sums);
    b.output_bit("cout_exact", exact_carries[width - 1]);

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vlsa;
    use bitnum::rng::Xoshiro256;
    use bitnum::UBig;
    use gatesim::{sim, sta};

    #[test]
    fn netlist_matches_behavioral_model() {
        let mut rng = Xoshiro256::seed_from_u64(55);
        for (n, l) in [(32usize, 6usize), (48, 11), (64, 17)] {
            let net = vlsa_netlist(n, l);
            let model = Vlsa::new(n, l);
            for _ in 0..200 {
                let a = UBig::random(n, &mut rng);
                let b = UBig::random(n, &mut rng);
                let out = sim::simulate_ubig(&net, &[("a", &a), ("b", &b)]).unwrap();
                let (spec, spec_cout) = model.speculative_add(&a, &b);
                assert_eq!(out["sum"], spec, "spec sum n={n} l={l}");
                assert_eq!(out["cout"].bit(0), spec_cout);
                assert_eq!(out["err"].bit(0), model.detect(&a, &b), "err n={n} l={l}");
                let (exact, exact_cout) = a.overflowing_add(&b);
                assert_eq!(out["sum_exact"], exact);
                assert_eq!(out["cout_exact"].bit(0), exact_cout);
            }
        }
    }

    #[test]
    fn stage_delays_are_ordered() {
        // Spec < detection (slightly) < recovery; all < ripple.
        let net = vlsa_netlist(64, 17);
        let t = sta::analyze(&net);
        let spec = t.output_arrival_tau("sum").unwrap();
        let err = t.output_arrival_tau("err").unwrap();
        let rec = t.output_arrival_tau("sum_exact").unwrap();
        assert!(
            err > spec * 0.8,
            "detector should not be far faster than spec"
        );
        assert!(rec > spec, "recovery completes after speculation");
    }

    #[test]
    fn forced_long_chain_is_flagged_and_recovered() {
        let n = 32;
        let net = vlsa_netlist(n, 8);
        let a = UBig::from_u128(1, n);
        let b = UBig::from_u128((1 << 31) - 1, n);
        let out = sim::simulate_ubig(&net, &[("a", &a), ("b", &b)]).unwrap();
        assert!(out["err"].bit(0));
        assert_eq!(out["sum_exact"], a.wrapping_add(&b));
        assert_ne!(out["sum"], a.wrapping_add(&b));
    }
}

//! A variable-latency engine around the VLSA baseline, mirroring the
//! VLCSA engines' protocol (1 cycle when detection stays quiet, 2 cycles
//! through the completion stage otherwise; always exact).

use bitnum::UBig;

use crate::Vlsa;

/// The outcome of one variable-latency VLSA addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VlsaOutcome {
    /// The (always exact) sum.
    pub sum: UBig,
    /// The (always exact) carry-out.
    pub cout: bool,
    /// 1 (speculation accepted) or 2 (completion stage).
    pub cycles: u8,
    /// Whether the run detector flagged.
    pub flagged: bool,
}

/// The VLSA adder operated as a reliable variable-latency unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VlsaEngine {
    adder: Vlsa,
}

impl VlsaEngine {
    /// Wraps a VLSA instance.
    pub fn new(adder: Vlsa) -> Self {
        Self { adder }
    }

    /// The underlying speculative adder.
    pub fn vlsa(&self) -> &Vlsa {
        &self.adder
    }

    /// One variable-latency addition; the result is always exact.
    ///
    /// # Panics
    ///
    /// Panics if operand widths do not match the adder width.
    pub fn add(&self, a: &UBig, b: &UBig) -> VlsaOutcome {
        if self.adder.detect(a, b) {
            let (sum, cout) = self.adder.recover(a, b);
            VlsaOutcome {
                sum,
                cout,
                cycles: 2,
                flagged: true,
            }
        } else {
            let (sum, cout) = self.adder.speculative_add(a, b);
            debug_assert_eq!(sum, a.wrapping_add(b), "reliability invariant");
            VlsaOutcome {
                sum,
                cout,
                cycles: 1,
                flagged: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::rng::Xoshiro256;

    #[test]
    fn always_exact_and_sometimes_stalls() {
        let engine = VlsaEngine::new(Vlsa::new(64, 8));
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut stalls = 0;
        for _ in 0..30_000 {
            let a = UBig::random(64, &mut rng);
            let b = UBig::random(64, &mut rng);
            let outcome = engine.add(&a, &b);
            let (sum, cout) = a.overflowing_add(&b);
            assert_eq!(outcome.sum, sum);
            assert_eq!(outcome.cout, cout);
            stalls += (outcome.cycles == 2) as usize;
        }
        assert!(stalls > 0, "l=8 must stall within 30k uniform trials");
    }

    #[test]
    fn stall_rate_higher_than_vlcsa_at_equal_parameter() {
        // The Table 7.3 asymmetry seen from the engine side: at k = l the
        // per-bit speculation stalls more (it overestimates more broadly).
        let engine = VlsaEngine::new(Vlsa::new(64, 10));
        let mut rng = Xoshiro256::seed_from_u64(6);
        let mut vlsa_stalls = 0usize;
        for _ in 0..30_000 {
            let a = UBig::random(64, &mut rng);
            let b = UBig::random(64, &mut rng);
            vlsa_stalls += (engine.add(&a, &b).cycles == 2) as usize;
        }
        let vlsa_rate = vlsa_stalls as f64 / 30_000.0;
        let vlcsa_nominal = 30_000.0; // placeholder to keep types simple
        let _ = vlcsa_nominal;
        // Compare against the SCSA nominal model at the same parameter.
        // (vlsa crate cannot depend on vlcsa; the cross-check lives in the
        // integration tests. Here: the rate must at least exceed the VLSA
        // error-model rate, since detection overestimates.)
        assert!(vlsa_rate >= crate::model::error_rate(64, 10));
    }
}

//! VLSA — the *variable latency speculative adder* of Verma, Brisk &
//! Ienne (DATE 2008), reference 17 of the paper and its principal
//! prior-art baseline.
//!
//! VLSA speculates **per output bit**: the carry consumed by bit `i` is
//! computed from only the previous `l` bits (a truncated parallel-prefix
//! computation) instead of all `i` previous bits. Because almost all carry
//! chains are shorter than `l`, the speculative sum is almost always
//! correct; a detector flags any propagate run of length `≥ l` (a sound
//! overestimate of the error condition), and a completion stage finishes
//! the prefix computation to recover the exact sum in a second cycle.
//!
//! The paper contrasts its SCSA/VLCSA designs against VLSA on three counts
//! that this implementation reproduces structurally:
//!
//! 1. VLSA speculates per *bit* (n windowed carries), SCSA per *window*
//!    (⌈n/k⌉ block carries) — so VLSA needs a larger speculation depth `l`
//!    for the same error rate (Table 7.3) and more area (Fig. 7.3);
//! 2. VLSA's detector finishes *after* its speculative sum (one extra
//!    OR-reduce over n positions vs. the sum XOR), eroding the speculation
//!    benefit (Fig. 7.4);
//! 3. the shared windowed-prefix logic has high primary-input fanout.
//!
//! # Example
//!
//! ```
//! use bitnum::UBig;
//! use vlsa::Vlsa;
//!
//! let adder = Vlsa::new(64, 17); // Table 7.3: l = 17 for 0.01% at n = 64
//! let a = UBig::from_u128(123, 64);
//! let b = UBig::from_u128(456, 64);
//! let (sum, cout) = adder.speculative_add(&a, &b);
//! assert_eq!(sum, a.wrapping_add(&b)); // short carry chains: correct
//! assert!(!cout);
//! assert!(!adder.detect(&a, &b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod model;
pub mod netlist;

use bitnum::pg::{self, PgPlanes};
use bitnum::UBig;

/// A behavioral VLSA instance: width `n`, speculative chain length `l`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vlsa {
    width: usize,
    chain_len: usize,
}

impl Vlsa {
    /// Creates a VLSA with the given adder width and speculative carry
    /// chain length `l`.
    ///
    /// # Panics
    ///
    /// Panics if `chain_len == 0` or `chain_len > width`.
    pub fn new(width: usize, chain_len: usize) -> Self {
        assert!(
            chain_len >= 1 && chain_len <= width,
            "chain length out of range"
        );
        Self { width, chain_len }
    }

    /// Adder width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Speculative carry chain length `l`.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// The speculative addition: every carry is computed from the previous
    /// `l` bits only. Returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if operand widths do not match the adder width.
    pub fn speculative_add(&self, a: &UBig, b: &UBig) -> (UBig, bool) {
        self.check(a, b);
        let planes = PgPlanes::of(a, b);
        let windowed = pg::windowed_planes(&planes, self.chain_len);
        // s_i = p_i ^ c_{i-1}; c plane is the windowed generate.
        let sum = &planes.p ^ &windowed.g.shl(1);
        let cout = windowed.g.bit(self.width - 1);
        (sum, cout)
    }

    /// Error detection: flags iff some full `l`-bit propagate window
    /// (ending at `i ≥ l`) is preceded by a bit that can emit a carry
    /// (`a_{i−l} | b_{i−l}`). This is the sound overestimate the VLSA
    /// hardware implements: a real error needs a live carry entering the
    /// window, which requires a generate — or a propagate continuing the
    /// chain — directly below it.
    pub fn detect(&self, a: &UBig, b: &UBig) -> bool {
        self.check(a, b);
        if self.chain_len >= self.width {
            return false;
        }
        let planes = PgPlanes::of(a, b);
        let windowed = pg::windowed_planes(&planes, self.chain_len);
        let precursor = (a | b).shl(self.chain_len);
        !(&windowed.p & &precursor).is_zero()
    }

    /// True iff the speculative result (sum or carry-out) is wrong.
    pub fn is_error(&self, a: &UBig, b: &UBig) -> bool {
        let (spec, spec_cout) = self.speculative_add(a, b);
        let (exact, exact_cout) = a.overflowing_add(b);
        spec != exact || spec_cout != exact_cout
    }

    /// Exact addition (the recovery result): `(sum, carry_out)`.
    pub fn recover(&self, a: &UBig, b: &UBig) -> (UBig, bool) {
        self.check(a, b);
        a.overflowing_add(b)
    }

    fn check(&self, a: &UBig, b: &UBig) {
        assert_eq!(a.width(), self.width, "operand width mismatch");
        assert_eq!(b.width(), self.width, "operand width mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::rng::Xoshiro256;

    #[test]
    fn correct_when_chains_short() {
        let adder = Vlsa::new(32, 8);
        let a = UBig::from_u128(0x0f0f_0f0f, 32);
        let b = UBig::from_u128(0x1010_1010, 32);
        let (sum, _) = adder.speculative_add(&a, &b);
        assert_eq!(sum, a.wrapping_add(&b));
        assert!(!adder.is_error(&a, &b));
    }

    #[test]
    fn long_chain_triggers_error_and_detection() {
        // a = 0...01, b = 0111...1 : carry generated at bit 0 propagates
        // through width-2 bits.
        let n = 32;
        let adder = Vlsa::new(n, 8);
        let a = UBig::from_u128(1, n);
        let b = UBig::from_u128((1 << (n - 1)) - 1, n);
        assert!(adder.is_error(&a, &b));
        assert!(adder.detect(&a, &b));
    }

    #[test]
    fn detection_is_sound_on_random_inputs() {
        // No false negatives: every actual error must be flagged.
        let mut rng = Xoshiro256::seed_from_u64(7);
        for l in [4usize, 6, 10] {
            let adder = Vlsa::new(64, l);
            let mut errors = 0;
            for _ in 0..20_000 {
                let a = UBig::random(64, &mut rng);
                let b = UBig::random(64, &mut rng);
                if adder.is_error(&a, &b) {
                    errors += 1;
                    assert!(adder.detect(&a, &b), "missed error: {a} + {b} (l={l})");
                }
            }
            assert!(errors > 0, "l={l} should err sometimes at 20k samples");
        }
    }

    #[test]
    fn full_chain_length_is_exact() {
        let adder = Vlsa::new(40, 40);
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..500 {
            let a = UBig::random(40, &mut rng);
            let b = UBig::random(40, &mut rng);
            assert!(!adder.is_error(&a, &b));
        }
    }

    #[test]
    fn detection_matches_run_length_predicate() {
        let l = 7;
        let adder = Vlsa::new(48, l);
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..5_000 {
            let a = UBig::random(48, &mut rng);
            let b = UBig::random(48, &mut rng);
            let planes = PgPlanes::of(&a, &b);
            // Flag iff a full l-bit propagate window ending at i >= l is
            // preceded by a carry-capable bit.
            let want = (l..48)
                .any(|i| (0..l).all(|j| planes.p.bit(i - j)) && (a.bit(i - l) || b.bit(i - l)));
            assert_eq!(adder.detect(&a, &b), want);
        }
    }
}

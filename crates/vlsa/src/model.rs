//! Exact analytical error model for VLSA under unsigned uniform inputs.
//!
//! The speculative result is wrong iff some bit consumes a carry older than
//! its `l`-bit window — equivalently, iff a propagate run reaches length `l`
//! *with a live carry entering it*. Scanning the bits LSB→MSB, that event
//! is a small Markov chain:
//!
//! * state `(cb, r)` — `cb` is the carry entering the current propagate run
//!   and `r` the run length so far (capped at `l`);
//! * per bit (uniform operands): generate w.p. ¼ → `(1, 0)`;
//!   propagate w.p. ½ → `(cb, r+1)`, erring if `r+1 ≥ l ∧ cb`;
//!   kill w.p. ¼ → `(0, 0)`.
//!
//! This gives the *exact* probability, unlike the paper's union-bound-style
//! approximations; the solver below inverts it for Table 7.3.

/// Exact probability that an `n`-bit VLSA with chain length `l` produces a
/// wrong speculative result (sum or carry-out) on unsigned uniform inputs.
///
/// # Panics
///
/// Panics if `l == 0` or `n == 0`.
pub fn error_rate(n: usize, l: usize) -> f64 {
    assert!(n >= 1 && l >= 1, "invalid parameters");
    if l >= n {
        return 0.0;
    }
    // prob[cb][r]: probability mass in live states; `err` absorbs.
    let mut prob = vec![[0.0f64; 2]; l];
    prob[0][0] = 1.0;
    let mut err = 0.0f64;
    for _bit in 0..n {
        let mut next = vec![[0.0f64; 2]; l];
        let mut next_err = err;
        for r in 0..l {
            for cb in 0..2 {
                let p = prob[r][cb];
                if p == 0.0 {
                    continue;
                }
                // Generate (g=1): carry becomes live, run resets.
                next[0][1] += p * 0.25;
                // Kill (p=0, g=0): everything resets.
                next[0][0] += p * 0.25;
                // Propagate: run extends.
                if r + 1 >= l {
                    if cb == 1 {
                        next_err += p * 0.5;
                    } else {
                        // A runaway run with no carry below can never err;
                        // stay saturated at r = l-1 … but a *later* carry
                        // cannot enter an ongoing run, so the run stays
                        // harmless until broken.
                        next[l - 1][0] += p * 0.5;
                    }
                } else {
                    next[r + 1][cb] += p * 0.5;
                }
            }
        }
        prob = next;
        err = next_err;
    }
    err
}

/// Solver semantics for inverting the error model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Smallest `l` with `error_rate ≤ target`.
    Strict,
    /// Smallest `l` whose error rate, expressed in percent and rounded to
    /// two decimals, is `≤ target` — the rounding the paper's tables use.
    RoundsTo2Dp,
}

/// Smallest chain length `l` meeting `target` (a probability, e.g. `1e-4`
/// for the paper's 0.01 %).
///
/// # Panics
///
/// Panics if `target <= 0` or `n == 0`.
pub fn chain_length_for(n: usize, target: f64, semantics: Semantics) -> usize {
    assert!(target > 0.0, "target must be positive");
    for l in 1..=n {
        let p = error_rate(n, l);
        let ok = match semantics {
            Semantics::Strict => p <= target,
            Semantics::RoundsTo2Dp => {
                let pct = (p * 100.0 * 100.0).round() / 100.0;
                let tgt = (target * 100.0 * 100.0).round() / 100.0;
                pct <= tgt
            }
        };
        if ok {
            return l;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vlsa;
    use bitnum::rng::Xoshiro256;
    use bitnum::UBig;

    #[test]
    fn monotonic_in_l_and_n() {
        for n in [64usize, 256] {
            for l in 4..20 {
                assert!(error_rate(n, l + 1) <= error_rate(n, l));
            }
        }
        for l in [8usize, 12] {
            assert!(error_rate(128, l) >= error_rate(64, l));
        }
    }

    #[test]
    fn matches_monte_carlo() {
        let mut rng = Xoshiro256::seed_from_u64(100);
        for (n, l) in [(64usize, 6usize), (64, 8), (128, 7)] {
            let adder = Vlsa::new(n, l);
            let trials = 200_000usize;
            let mut errors = 0usize;
            for _ in 0..trials {
                let a = UBig::random(n, &mut rng);
                let b = UBig::random(n, &mut rng);
                if adder.is_error(&a, &b) {
                    errors += 1;
                }
            }
            let mc = errors as f64 / trials as f64;
            let model = error_rate(n, l);
            let tol = 4.0 * (model / trials as f64).sqrt() + 1e-6;
            assert!(
                (mc - model).abs() < tol.max(model * 0.15),
                "n={n} l={l}: mc={mc:.6} model={model:.6}"
            );
        }
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(error_rate(32, 32), 0.0);
        assert!(error_rate(32, 1) > 0.1); // speculating nothing errs a lot
    }

    #[test]
    fn solver_is_consistent() {
        for n in [64usize, 128, 256, 512] {
            let l = chain_length_for(n, 1e-4, Semantics::Strict);
            assert!(error_rate(n, l) <= 1e-4);
            if l > 1 {
                assert!(error_rate(n, l - 1) > 1e-4);
            }
            let l2 = chain_length_for(n, 1e-4, Semantics::RoundsTo2Dp);
            assert!(l2 <= l);
        }
    }

    #[test]
    fn paper_table_7_3_chain_lengths() {
        // Table 7.3 reports l = 17/18/20/21 for n = 64/128/256/512 at an
        // error rate of "0.01%". Our exact model under the paper's rounding
        // semantics must land within ±1 bit of those values (the paper
        // mixes analytical and simulated estimates; see EXPERIMENTS.md).
        let expect = [(64usize, 17usize), (128, 18), (256, 20), (512, 21)];
        for (n, l_paper) in expect {
            let l = chain_length_for(n, 1e-4, Semantics::RoundsTo2Dp);
            assert!(
                l.abs_diff(l_paper) <= 1,
                "n={n}: solver {l} vs paper {l_paper}"
            );
        }
    }
}

//! Small deterministic pseudo-random number generators.
//!
//! The Monte Carlo experiments in this workspace must be exactly
//! reproducible across platforms and over time, so we ship our own tiny
//! generators instead of depending on an external RNG crate:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer; used for seeding
//!   and for cheap one-off streams.
//! * [`Xoshiro256`] — Blackman & Vigna's `xoshiro256++`; the workhorse
//!   generator for operand sampling (sub-nanosecond per `u64`, 256-bit
//!   state, passes BigCrush).
//!
//! # Example
//!
//! ```
//! use bitnum::rng::{RandomBits, Xoshiro256};
//!
//! let mut rng = Xoshiro256::seed_from_u64(42);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//! // Same seed, same stream.
//! assert_eq!(Xoshiro256::seed_from_u64(42).next_u64(), a);
//! ```

/// A source of uniformly distributed 64-bit words.
///
/// Implemented by the crate's generators; object-safe so simulation code can
/// take `&mut dyn RandomBits`.
pub trait RandomBits {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)` using the top 53
    /// bits of the next word.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a random boolean.
    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RandomBits + ?Sized> RandomBits for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Primarily used to expand a single `u64` seed into larger generator
/// states; also a perfectly serviceable generator for non-critical streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RandomBits for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// `xoshiro256++` generator (Blackman & Vigna, 2019).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` through [`SplitMix64`], as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is invalid; SplitMix64 cannot produce four zero
        // outputs in a row, but be defensive anyway.
        if s.iter().all(|&x| x == 0) {
            return Self { s: [1, 2, 3, 4] };
        }
        Self { s }
    }

    /// Creates a generator from explicit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (a fixed point of the generator).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&x| x != 0),
            "xoshiro256 state must be non-zero"
        );
        Self { s }
    }
}

impl RandomBits for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 from the public-domain C code.
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn xoshiro_is_deterministic_and_well_spread() {
        let mut a = Xoshiro256::seed_from_u64(123);
        let mut b = Xoshiro256::seed_from_u64(123);
        let mut ones = 0u32;
        for _ in 0..1000 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            ones += x.count_ones();
        }
        // 64000 bits, expect ~32000 ones; allow generous slack.
        assert!((30000..34000).contains(&ones), "ones={ones}");
    }

    #[test]
    fn next_below_is_in_range_and_hits_all() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256::from_state([0; 4]);
    }
}

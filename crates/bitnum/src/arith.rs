//! Widening multiplication and division for [`UBig`].
//!
//! These are not on the paper's critical path (the paper is about addition),
//! but the cryptographic workload substrate (RSA/DH modular exponentiation,
//! elliptic-curve arithmetic in `workloads::crypto`) needs full
//! multiprecision multiply/divide to generate realistic addition traces.

use crate::ubig::limbs_for;
use crate::UBig;

impl UBig {
    /// Full widening multiplication: the result has width
    /// `self.width() + rhs.width()` so no bits are lost.
    ///
    /// ```
    /// use bitnum::UBig;
    /// let a = UBig::from_u128(u64::MAX as u128, 64);
    /// let p = a.mul_wide(&a);
    /// assert_eq!(p.width(), 128);
    /// assert_eq!(p.to_u128(), Some((u64::MAX as u128) * (u64::MAX as u128)));
    /// ```
    pub fn mul_wide(&self, rhs: &Self) -> Self {
        let out_width = self.width() + rhs.width();
        let mut out = vec![0u64; limbs_for(out_width)];
        for (i, &a) in self.limbs().iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs().iter().enumerate() {
                let idx = i + j;
                if idx >= out.len() {
                    break;
                }
                let t = a as u128 * b as u128 + out[idx] as u128 + carry;
                out[idx] = t as u64;
                carry = t >> 64;
            }
            let mut idx = i + rhs.limbs().len();
            while carry != 0 && idx < out.len() {
                let t = out[idx] as u128 + carry;
                out[idx] = t as u64;
                carry = t >> 64;
                idx += 1;
            }
        }
        Self::from_limbs(&out, out_width)
    }

    /// Modular multiplication at the width of `modulus`:
    /// `(self * rhs) mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn mul_mod(&self, rhs: &Self, modulus: &Self) -> Self {
        let product = self.mul_wide(rhs);
        product
            .rem(&modulus.resize(product.width()))
            .resize(modulus.width())
    }

    /// Division with remainder: returns `(self / rhs, self % rhs)`, both at
    /// the width of `self`.
    ///
    /// Uses limb-wise binary long division — O(width) subtract/compare steps;
    /// adequate for the workload generator, not a general bignum library.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &Self) -> (Self, Self) {
        assert!(!rhs.is_zero(), "division by zero");
        let width = self.width();
        let mut quotient = UBig::zero(width);
        let mut remainder = UBig::zero(width);
        let Some(top) = self.highest_set_bit() else {
            return (quotient, remainder);
        };
        let rhs_w = rhs.resize(width);
        for i in (0..=top).rev() {
            // remainder = (remainder << 1) | bit_i(self)
            remainder = remainder.shl(1);
            if self.bit(i) {
                remainder.set_bit(0, true);
            }
            if remainder >= rhs_w {
                remainder = remainder.wrapping_sub(&rhs_w);
                quotient.set_bit(i, true);
            }
        }
        (quotient, remainder)
    }

    /// Remainder only: `self % rhs`, at the width of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn rem(&self, rhs: &Self) -> Self {
        self.div_rem(rhs).1
    }

    /// Modular exponentiation by square-and-multiply:
    /// `self^exponent mod modulus`, at the width of `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn pow_mod(&self, exponent: &Self, modulus: &Self) -> Self {
        let width = modulus.width();
        let mut base = self.resize(width).rem(modulus);
        let mut acc = UBig::from_u128(1, width).rem(modulus);
        let top = match exponent.highest_set_bit() {
            Some(t) => t,
            None => return acc,
        };
        for i in 0..=top {
            if exponent.bit(i) {
                acc = acc.mul_mod(&base, modulus);
            }
            if i != top {
                base = base.mul_mod(&base, modulus);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use crate::rng::Xoshiro256;
    use crate::UBig;

    #[test]
    fn mul_wide_matches_u128() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        for _ in 0..500 {
            let a = UBig::random(60, &mut rng);
            let b = UBig::random(60, &mut rng);
            let p = a.mul_wide(&b);
            assert_eq!(
                p.to_u128(),
                Some(a.to_u128().unwrap() * b.to_u128().unwrap())
            );
        }
    }

    #[test]
    fn mul_wide_big_identities() {
        let mut rng = Xoshiro256::seed_from_u64(32);
        let a = UBig::random(300, &mut rng);
        let one = UBig::from_u128(1, 300);
        assert_eq!(a.mul_wide(&one).resize(300), a);
        assert!(a.mul_wide(&UBig::zero(300)).is_zero());
        // (a * 2) == a << 1 at double width.
        let two = UBig::from_u128(2, 300);
        assert_eq!(a.mul_wide(&two), a.resize(600).shl(1));
    }

    #[test]
    fn div_rem_matches_u128() {
        let mut rng = Xoshiro256::seed_from_u64(33);
        for _ in 0..500 {
            let a = UBig::random(100, &mut rng);
            let mut b = UBig::random(40, &mut rng).resize(100);
            if b.is_zero() {
                b = UBig::from_u128(3, 100);
            }
            let (q, r) = a.div_rem(&b);
            let av = a.to_u128().unwrap();
            let bv = b.to_u128().unwrap();
            assert_eq!(q.to_u128(), Some(av / bv));
            assert_eq!(r.to_u128(), Some(av % bv));
        }
    }

    #[test]
    fn div_rem_reconstructs() {
        let mut rng = Xoshiro256::seed_from_u64(34);
        for _ in 0..50 {
            let a = UBig::random(320, &mut rng);
            let b = UBig::random(200, &mut rng).resize(320);
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.div_rem(&b);
            assert!(r < b);
            // q*b + r == a (computed at 640 bits to avoid overflow).
            let qb = q.mul_wide(&b.resize(320));
            let sum = qb.wrapping_add(&r.resize(640));
            assert_eq!(sum.resize(320), a);
        }
    }

    #[test]
    fn pow_mod_small_cases() {
        let m = UBig::from_u128(1000, 64);
        let b = UBig::from_u128(7, 64);
        let e = UBig::from_u128(13, 64);
        // 7^13 mod 1000 = 96889010407 mod 1000 = 407.
        assert_eq!(b.pow_mod(&e, &m).to_u128(), Some(407));
        // x^0 = 1.
        assert_eq!(b.pow_mod(&UBig::zero(64), &m).to_u128(), Some(1));
    }

    #[test]
    fn pow_mod_fermat() {
        // Fermat's little theorem: a^(p-1) = 1 mod p for prime p.
        let p = UBig::from_u128(1_000_000_007, 64);
        let pm1 = UBig::from_u128(1_000_000_006, 64);
        let mut rng = Xoshiro256::seed_from_u64(35);
        for _ in 0..10 {
            let a = UBig::random(30, &mut rng).resize(64);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a.pow_mod(&pm1, &p).to_u128(), Some(1));
        }
    }
}

//! Bit-sliced (transposed) operand storage for batched evaluation.
//!
//! A [`BitSlab`] holds up to 64 independent `width`-bit values — *lanes* —
//! in transposed layout: one `u64` word per **bit position**, where bit `l`
//! of word `i` is lane `l`'s bit `i`. In this layout a single word
//! operation evaluates one gate of all lanes simultaneously, so a
//! `width`-step carry chain produces 64 full additions in `width` word
//! operations — the trick constrained-decoding engines and bit-sliced
//! cipher implementations use to make per-element work word-parallel.
//!
//! The adder crates build on two primitives here: the storage itself
//! (transpose in, compute word-parallel, transpose out) and the bit-sliced
//! ripple kernel [`ripple_words`], which is both a complete 64-lane adder
//! and the per-window building block of the speculative engines.
//!
//! Batches wider than 64 lanes are held by [`WideSlab`]: a sequence of
//! full [`BitSlab`] chunks (plus one possibly-partial tail chunk), so the
//! 64-lane kernels become an internal chunking detail and callers can
//! issue groups of any size.
//!
//! # Example
//!
//! ```
//! use bitnum::batch::{ripple_words, BitSlab};
//! use bitnum::UBig;
//!
//! let a = BitSlab::from_lanes(&[UBig::from_u128(3, 8), UBig::from_u128(200, 8)]);
//! let b = BitSlab::from_lanes(&[UBig::from_u128(4, 8), UBig::from_u128(100, 8)]);
//! let mut sum = BitSlab::zero(8, 2);
//! let cout = ripple_words(a.words(), b.words(), 0, a.lane_mask(), sum.words_mut());
//! assert_eq!(sum.lane(0).to_u128(), Some(7));
//! assert_eq!(sum.lane(1).to_u128(), Some(44)); // 300 mod 256
//! assert_eq!(cout, 0b10); // only lane 1 overflows 8 bits
//! ```

use crate::rng::RandomBits;
use crate::UBig;

/// Maximum number of lanes a [`BitSlab`] can hold (one per bit of a `u64`).
pub const MAX_LANES: usize = 64;

/// A batch of up to 64 equal-width values in transposed (bit-sliced) layout.
///
/// Lane `l`'s bit `i` is stored as bit `l` of [`BitSlab::word`]`(i)`; bits
/// at lane positions `>= lanes()` are guaranteed zero in every word (a type
/// invariant maintained by all constructors and [`BitSlab::set_word`]).
///
/// # Example
///
/// ```
/// use bitnum::batch::BitSlab;
/// use bitnum::UBig;
///
/// let lanes: Vec<UBig> = (0..5).map(|v| UBig::from_u128(v, 16)).collect();
/// let slab = BitSlab::from_lanes(&lanes);
/// assert_eq!(slab.width(), 16);
/// assert_eq!(slab.lanes(), 5);
/// // Bit 0 across lanes: values 1 and 3 are odd -> lanes 1 and 3 set.
/// assert_eq!(slab.word(0), 0b01010);
/// assert_eq!(slab.to_lanes(), lanes);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BitSlab {
    width: usize,
    lanes: usize,
    /// `words[i]` holds bit `i` of every lane.
    words: Vec<u64>,
}

impl BitSlab {
    /// Creates an all-zero slab of `lanes` lanes of `width` bits each.
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// let slab = BitSlab::zero(32, 64);
    /// assert!(slab.to_lanes().iter().all(|l| l.is_zero()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`crate::MAX_WIDTH`], or if
    /// `lanes` is zero or exceeds [`MAX_LANES`].
    pub fn zero(width: usize, lanes: usize) -> Self {
        assert!(
            (1..=crate::MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lanes must be in 1..={MAX_LANES}, got {lanes}"
        );
        Self {
            width,
            lanes,
            words: vec![0; width],
        }
    }

    /// Transposes a slice of equal-width values into a slab (value `l`
    /// becomes lane `l`).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::UBig;
    /// let slab = BitSlab::from_lanes(&[UBig::from_u128(0b10, 2), UBig::from_u128(0b01, 2)]);
    /// assert_eq!(slab.word(0), 0b10); // lane 1 has bit 0 set
    /// assert_eq!(slab.word(1), 0b01); // lane 0 has bit 1 set
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, holds more than [`MAX_LANES`] values,
    /// or the values disagree on width.
    pub fn from_lanes(values: &[UBig]) -> Self {
        assert!(!values.is_empty(), "a slab needs at least one lane");
        let width = values[0].width();
        let mut slab = Self::zero(width, values.len());
        for (l, v) in values.iter().enumerate() {
            assert_eq!(v.width(), width, "lane {l} width mismatch");
            for (li, &limb) in v.limbs().iter().enumerate() {
                let mut w = limb;
                while w != 0 {
                    let i = li * 64 + w.trailing_zeros() as usize;
                    slab.words[i] |= 1 << l;
                    w &= w - 1;
                }
            }
        }
        slab
    }

    /// Fills a slab with uniformly random lanes (equivalent to transposing
    /// `lanes` draws of [`UBig::random`], but sampled directly in
    /// transposed layout).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::rng::Xoshiro256;
    /// let mut rng = Xoshiro256::seed_from_u64(1);
    /// let slab = BitSlab::random(64, 16, &mut rng);
    /// assert_eq!(slab.lanes(), 16);
    /// assert!(slab.words().iter().all(|&w| w <= slab.lane_mask()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`BitSlab::zero`].
    pub fn random<R: RandomBits + ?Sized>(width: usize, lanes: usize, rng: &mut R) -> Self {
        let mut slab = Self::zero(width, lanes);
        let mask = slab.lane_mask();
        for w in &mut slab.words {
            *w = rng.next_u64() & mask;
        }
        slab
    }

    /// The bit width of each lane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of lanes held.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The word mask with one bit set per lane
    /// (`u64::MAX` at 64 lanes).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// assert_eq!(BitSlab::zero(8, 3).lane_mask(), 0b111);
    /// assert_eq!(BitSlab::zero(8, 64).lane_mask(), u64::MAX);
    /// ```
    pub fn lane_mask(&self) -> u64 {
        if self.lanes == 64 {
            u64::MAX
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// The word of bit position `i`: bit `l` is lane `l`'s bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// All bit-position words, LSB position first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the bit-position words for in-place kernels.
    ///
    /// The caller must keep lane bits `>= lanes()` zero; kernels that only
    /// combine existing words (e.g. [`ripple_words`] with a masked
    /// carry-in) preserve this automatically. Use [`BitSlab::set_word`]
    /// when the new word may carry stray high bits.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Replaces the word of bit position `i`, masking off lane bits beyond
    /// [`BitSlab::lanes`].
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// let mut slab = BitSlab::zero(4, 2);
    /// slab.set_word(3, u64::MAX); // stray bits beyond lane 1 are dropped
    /// assert_eq!(slab.word(3), 0b11);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_word(&mut self, i: usize, word: u64) {
        let mask = self.lane_mask();
        self.words[i] = word & mask;
    }

    /// Extracts lane `l` as a [`UBig`] (the inverse of
    /// [`BitSlab::from_lanes`] for one value).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::UBig;
    /// let v = UBig::from_u128(0xdead, 64);
    /// let slab = BitSlab::from_lanes(&[UBig::zero(64), v.clone()]);
    /// assert_eq!(slab.lane(1), v);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes`.
    pub fn lane(&self, l: usize) -> UBig {
        assert!(
            l < self.lanes,
            "lane {l} out of range for {} lanes",
            self.lanes
        );
        let mut limbs = vec![0u64; self.width.div_ceil(64)];
        for (i, &w) in self.words.iter().enumerate() {
            limbs[i / 64] |= ((w >> l) & 1) << (i % 64);
        }
        UBig::from_limbs(&limbs, self.width)
    }

    /// Untransposes the slab back into one [`UBig`] per lane.
    pub fn to_lanes(&self) -> Vec<UBig> {
        (0..self.lanes).map(|l| self.lane(l)).collect()
    }
}

/// Bit-sliced ripple-carry addition: adds `a` and `b` word-parallel across
/// lanes, writing sum words into `sum` and returning the carry-out word.
///
/// `cin` is a *per-lane* carry-in word (bit `l` is lane `l`'s carry-in), so
/// the same kernel serves as a full-width adder (`cin = 0`), the
/// carry-in-1 leg of a carry-select block (`cin = lane_mask`), or a
/// speculative window fed by a per-lane select signal. The carry recurrence
/// per bit position is the usual `c' = g | (p & c)` on whole words: 64
/// lanes per ~5 word operations.
///
/// All three slices must come from slabs of identical width and lane
/// count, restricted to the same bit range. `lane_mask` is that slab lane
/// mask ([`BitSlab::lane_mask`]): `cin` — and, in debug builds, every
/// operand word — must have no bits set beyond it. Violations are the
/// classic slab-corruption bug (a stray carry bit silently invents a
/// phantom lane), so they are enforced with `debug_assert!` at the top of
/// the kernel and fail loudly under `cargo test` instead of corrupting
/// lanes.
///
/// # Example
///
/// ```
/// use bitnum::batch::{ripple_words, BitSlab};
/// use bitnum::UBig;
///
/// let a = BitSlab::from_lanes(&vec![UBig::from_u128(9, 4); 3]);
/// let b = BitSlab::from_lanes(&vec![UBig::from_u128(6, 4); 3]);
/// let mut s = BitSlab::zero(4, 3);
/// // Carry-in only into lane 1: lanes 0 and 2 get 15, lane 1 wraps to 0.
/// let cout = ripple_words(a.words(), b.words(), 0b010, a.lane_mask(), s.words_mut());
/// assert_eq!(s.lane(0).to_u128(), Some(15));
/// assert_eq!(s.lane(1).to_u128(), Some(0));
/// assert_eq!(cout, 0b010);
/// ```
///
/// # Panics
///
/// Panics if the slice lengths differ. Debug builds panic when `cin` or an
/// operand word carries bits beyond `lane_mask`.
pub fn ripple_words(a: &[u64], b: &[u64], cin: u64, lane_mask: u64, sum: &mut [u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "operand word counts differ");
    assert_eq!(a.len(), sum.len(), "sum word count differs");
    debug_assert_eq!(
        cin & !lane_mask,
        0,
        "carry-in word {cin:#x} has bits beyond the lane mask {lane_mask:#x}"
    );
    debug_assert!(
        a.iter().chain(b).all(|&w| w & !lane_mask == 0),
        "operand words carry bits beyond the lane mask {lane_mask:#x}"
    );
    let mut carry = cin;
    for ((&aw, &bw), sw) in a.iter().zip(b).zip(sum.iter_mut()) {
        let p = aw ^ bw;
        let g = aw & bw;
        *sw = p ^ carry;
        carry = g | (p & carry);
    }
    carry
}

/// A batch of arbitrarily many equal-width values, stored as a sequence of
/// [`BitSlab`] chunks.
///
/// Every chunk holds exactly [`MAX_LANES`] lanes except the last, which
/// holds the remainder (`1..=MAX_LANES`). Global lane `l` lives in chunk
/// `l / MAX_LANES` at chunk-lane `l % MAX_LANES`, and each chunk maintains
/// the [`BitSlab`] lane-mask invariant independently — so any ≤64-lane
/// kernel scales to arbitrary batch sizes by iterating [`WideSlab::chunks`],
/// and sharded executors can split the chunk list across threads without
/// touching lane data.
///
/// # Example
///
/// ```
/// use bitnum::batch::{WideSlab, MAX_LANES};
/// use bitnum::UBig;
///
/// let values: Vec<UBig> = (0..100).map(|v| UBig::from_u128(v, 16)).collect();
/// let slab = WideSlab::from_lanes(&values);
/// assert_eq!(slab.lanes(), 100);
/// assert_eq!(slab.chunks().len(), 2); // 64 + 36
/// assert_eq!(slab.chunks()[1].lanes(), 100 - MAX_LANES);
/// assert_eq!(slab.lane(99).to_u128(), Some(99));
/// assert_eq!(slab.to_lanes(), values);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WideSlab {
    width: usize,
    lanes: usize,
    chunks: Vec<BitSlab>,
}

impl WideSlab {
    /// Creates an all-zero wide slab of `lanes` lanes of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`crate::MAX_WIDTH`], or if
    /// `lanes` is zero.
    pub fn zero(width: usize, lanes: usize) -> Self {
        assert!(lanes >= 1, "a wide slab needs at least one lane");
        let chunks = Self::chunk_sizes(lanes)
            .map(|chunk_lanes| BitSlab::zero(width, chunk_lanes))
            .collect();
        Self {
            width,
            lanes,
            chunks,
        }
    }

    /// Transposes a slice of equal-width values into chunked slabs (value
    /// `l` becomes lane `l`).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or the values disagree on width.
    pub fn from_lanes(values: &[UBig]) -> Self {
        assert!(!values.is_empty(), "a wide slab needs at least one lane");
        let width = values[0].width();
        // BitSlab::from_lanes only checks widths within its own chunk, so
        // enforce agreement across chunk boundaries here.
        for (l, v) in values.iter().enumerate() {
            assert_eq!(v.width(), width, "lane {l} width mismatch");
        }
        let chunks: Vec<BitSlab> = values.chunks(MAX_LANES).map(BitSlab::from_lanes).collect();
        Self {
            width,
            lanes: values.len(),
            chunks,
        }
    }

    /// Reassembles a wide slab from chunks (the inverse of
    /// [`WideSlab::chunks`], as produced by per-chunk kernels).
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty, the chunks disagree on width, or any
    /// chunk but the last holds fewer than [`MAX_LANES`] lanes.
    pub fn from_chunks(chunks: Vec<BitSlab>) -> Self {
        assert!(!chunks.is_empty(), "a wide slab needs at least one chunk");
        let width = chunks[0].width();
        let mut lanes = 0;
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.width(), width, "chunk {i} width mismatch");
            assert!(
                chunk.lanes() == MAX_LANES || i + 1 == chunks.len(),
                "chunk {i} is partial ({} lanes) but not last",
                chunk.lanes()
            );
            lanes += chunk.lanes();
        }
        Self {
            width,
            lanes,
            chunks,
        }
    }

    /// Fills a wide slab with uniformly random lanes, chunk by chunk (the
    /// chunked equivalent of [`BitSlab::random`]).
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`WideSlab::zero`].
    pub fn random<R: RandomBits + ?Sized>(width: usize, lanes: usize, rng: &mut R) -> Self {
        assert!(lanes >= 1, "a wide slab needs at least one lane");
        let chunks = Self::chunk_sizes(lanes)
            .map(|chunk_lanes| BitSlab::random(width, chunk_lanes, rng))
            .collect();
        Self {
            width,
            lanes,
            chunks,
        }
    }

    fn chunk_sizes(lanes: usize) -> impl Iterator<Item = usize> {
        let full = lanes / MAX_LANES;
        let rem = lanes % MAX_LANES;
        std::iter::repeat_n(MAX_LANES, full).chain((rem > 0).then_some(rem))
    }

    /// The bit width of each lane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The total number of lanes across all chunks.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The ≤64-lane chunks, global lane order: chunk `c` holds lanes
    /// `c * MAX_LANES ..`.
    pub fn chunks(&self) -> &[BitSlab] {
        &self.chunks
    }

    /// Extracts global lane `l` as a [`UBig`].
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes`.
    pub fn lane(&self, l: usize) -> UBig {
        assert!(
            l < self.lanes,
            "lane {l} out of range for {} lanes",
            self.lanes
        );
        self.chunks[l / MAX_LANES].lane(l % MAX_LANES)
    }

    /// Untransposes the wide slab back into one [`UBig`] per lane.
    pub fn to_lanes(&self) -> Vec<UBig> {
        self.chunks.iter().flat_map(|c| c.to_lanes()).collect()
    }
}

impl From<BitSlab> for WideSlab {
    /// Wraps a single ≤64-lane slab as a one-chunk wide slab.
    fn from(chunk: BitSlab) -> Self {
        Self {
            width: chunk.width(),
            lanes: chunk.lanes(),
            chunks: vec![chunk],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn transpose_roundtrip() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for (width, lanes) in [
            (1usize, 1usize),
            (8, 3),
            (64, 64),
            (65, 17),
            (130, 5),
            (512, 64),
        ] {
            let values: Vec<UBig> = (0..lanes).map(|_| UBig::random(width, &mut rng)).collect();
            let slab = BitSlab::from_lanes(&values);
            assert_eq!(slab.to_lanes(), values, "width={width} lanes={lanes}");
            for (l, v) in values.iter().enumerate() {
                assert_eq!(&slab.lane(l), v);
            }
        }
    }

    #[test]
    fn words_respect_lane_mask() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let slab = BitSlab::random(100, 7, &mut rng);
        assert_eq!(slab.lane_mask(), 0x7f);
        assert!(slab.words().iter().all(|&w| w & !0x7f == 0));
        let mut slab = slab;
        slab.set_word(0, u64::MAX);
        assert_eq!(slab.word(0), 0x7f);
    }

    #[test]
    fn ripple_matches_scalar_adds() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for (width, lanes) in [(64usize, 64usize), (65, 64), (31, 9), (128, 1)] {
            let a = BitSlab::random(width, lanes, &mut rng);
            let b = BitSlab::random(width, lanes, &mut rng);
            let cin = rng.next_u64() & a.lane_mask();
            let mut sum = BitSlab::zero(width, lanes);
            let cout = ripple_words(a.words(), b.words(), cin, a.lane_mask(), sum.words_mut());
            for l in 0..lanes {
                let (s, c) = a.lane(l).add_with_carry(&b.lane(l), (cin >> l) & 1 == 1);
                assert_eq!(sum.lane(l), s, "lane {l} width {width}");
                assert_eq!((cout >> l) & 1 == 1, c, "cout lane {l}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lanes must be in")]
    fn too_many_lanes_panic() {
        let _ = BitSlab::zero(8, 65);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "beyond the lane mask")]
    fn unmasked_carry_in_fails_loudly() {
        // The CHANGES.md gotcha, enforced: a carry-in word with bits beyond
        // the lane mask must panic in debug builds, not corrupt lanes.
        let a = BitSlab::zero(8, 3);
        let b = BitSlab::zero(8, 3);
        let mut sum = BitSlab::zero(8, 3);
        let _ = ripple_words(
            a.words(),
            b.words(),
            u64::MAX,
            a.lane_mask(),
            sum.words_mut(),
        );
    }

    #[test]
    fn wide_slab_roundtrip_and_chunking() {
        let mut rng = Xoshiro256::seed_from_u64(12);
        for lanes in [1usize, 63, 64, 65, 100, 128, 200] {
            let values: Vec<UBig> = (0..lanes).map(|_| UBig::random(40, &mut rng)).collect();
            let slab = WideSlab::from_lanes(&values);
            assert_eq!(slab.lanes(), lanes);
            assert_eq!(slab.width(), 40);
            assert_eq!(slab.chunks().len(), lanes.div_ceil(MAX_LANES));
            for (i, chunk) in slab.chunks().iter().enumerate() {
                let expect = if i + 1 < slab.chunks().len() {
                    MAX_LANES
                } else {
                    lanes - i * MAX_LANES
                };
                assert_eq!(chunk.lanes(), expect, "lanes={lanes} chunk={i}");
            }
            assert_eq!(slab.to_lanes(), values, "lanes={lanes}");
            for (l, v) in values.iter().enumerate() {
                assert_eq!(&slab.lane(l), v);
            }
            // from_chunks is the inverse of chunks().
            let rebuilt = WideSlab::from_chunks(slab.chunks().to_vec());
            assert_eq!(rebuilt, slab);
        }
    }

    #[test]
    fn wide_slab_random_matches_chunked_draws() {
        // random() must draw chunk by chunk so sharded reseeding composes.
        let slab = WideSlab::random(32, 130, &mut Xoshiro256::seed_from_u64(77));
        let mut rng = Xoshiro256::seed_from_u64(77);
        for chunk in slab.chunks() {
            assert_eq!(chunk, &BitSlab::random(32, chunk.lanes(), &mut rng));
        }
        assert_eq!(WideSlab::zero(32, 130).lanes(), 130);
    }

    #[test]
    fn wide_slab_from_single_chunk() {
        let chunk = BitSlab::random(16, 10, &mut Xoshiro256::seed_from_u64(4));
        let wide = WideSlab::from(chunk.clone());
        assert_eq!(wide.lanes(), 10);
        assert_eq!(wide.chunks(), std::slice::from_ref(&chunk));
    }

    #[test]
    #[should_panic(expected = "partial")]
    fn wide_slab_partial_chunk_in_middle_panics() {
        let _ = WideSlab::from_chunks(vec![BitSlab::zero(8, 10), BitSlab::zero(8, 64)]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wide_slab_cross_chunk_width_mismatch_panics() {
        // The mismatching lane sits in the second chunk: per-chunk
        // validation alone would miss it.
        let mut values = vec![UBig::zero(8); 64];
        values.push(UBig::zero(16));
        let _ = WideSlab::from_lanes(&values);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_lanes_panic() {
        let _ = BitSlab::from_lanes(&[UBig::zero(8), UBig::zero(9)]);
    }
}

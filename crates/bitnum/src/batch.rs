//! Bit-sliced (transposed) operand storage for batched evaluation.
//!
//! A [`BitSlab`] holds up to [`Word::LANES`] independent `width`-bit
//! values — *lanes* — in transposed layout: one lane word per **bit
//! position**, where bit `l` of word `i` is lane `l`'s bit `i`. In this
//! layout a single word operation evaluates one gate of all lanes
//! simultaneously, so a `width`-step carry chain produces a whole lane
//! group of full additions in `width` word operations — the trick
//! constrained-decoding engines and bit-sliced cipher implementations use
//! to make per-element work word-parallel.
//!
//! The lane word is the [`Word`] abstraction: `u64` (64 lanes per word
//! operation) or the SIMD-friendly [`W256`] (256 lanes). [`DefaultWord`]
//! — [`W256`] unless the build sets `--cfg vlcsa_word64` — is the default
//! type parameter everywhere, so code that does not name a word gets the
//! wide slabs automatically.
//!
//! The adder crates build on two primitives here: the storage itself
//! (transpose in, compute word-parallel, transpose out) and the bit-sliced
//! ripple kernel [`ripple_words`], which is both a complete whole-slab
//! adder and the per-window building block of the speculative engines.
//!
//! Batches wider than one word are held by [`WideSlab`]: a sequence of
//! full [`BitSlab`] chunks (plus one possibly-partial tail chunk), so the
//! per-word lane cap becomes an internal chunking detail and callers can
//! issue groups of any size.
//!
//! # Example
//!
//! ```
//! use bitnum::batch::{ripple_words, BitSlab, DefaultWord, Word};
//! use bitnum::UBig;
//!
//! let a: BitSlab = BitSlab::from_lanes(&[UBig::from_u128(3, 8), UBig::from_u128(200, 8)]);
//! let b = BitSlab::from_lanes(&[UBig::from_u128(4, 8), UBig::from_u128(100, 8)]);
//! let mut sum = BitSlab::zero(8, 2);
//! let cout = ripple_words(a.words(), b.words(), DefaultWord::ZERO, a.lane_mask(), sum.words_mut());
//! assert_eq!(sum.lane(0).to_u128(), Some(7));
//! assert_eq!(sum.lane(1).to_u128(), Some(44)); // 300 mod 256
//! assert_eq!(cout.limb(0), 0b10); // only lane 1 overflows 8 bits
//! ```

use crate::rng::RandomBits;
use crate::UBig;

pub use crate::word::{DefaultWord, Word, W256, W512};

/// A batch of up to [`Word::LANES`] equal-width values in transposed
/// (bit-sliced) layout.
///
/// Lane `l`'s bit `i` is stored as bit `l` of [`BitSlab::word`]`(i)`; bits
/// at lane positions `>= lanes()` are guaranteed zero in every word (a type
/// invariant maintained by all constructors and [`BitSlab::set_word`],
/// enforced per-limb by [`Word::lane_mask`]).
///
/// # Example
///
/// ```
/// use bitnum::batch::{BitSlab, Word};
/// use bitnum::UBig;
///
/// let lanes: Vec<UBig> = (0..5).map(|v| UBig::from_u128(v, 16)).collect();
/// let slab: BitSlab = BitSlab::from_lanes(&lanes);
/// assert_eq!(slab.width(), 16);
/// assert_eq!(slab.lanes(), 5);
/// // Bit 0 across lanes: values 1 and 3 are odd -> lanes 1 and 3 set.
/// assert_eq!(slab.word(0).limb(0), 0b01010);
/// assert_eq!(slab.to_lanes(), lanes);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BitSlab<W: Word = DefaultWord> {
    width: usize,
    lanes: usize,
    /// `words[i]` holds bit `i` of every lane.
    words: Vec<W>,
}

impl<W: Word> BitSlab<W> {
    /// Creates an all-zero slab of `lanes` lanes of `width` bits each.
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// let slab: BitSlab = BitSlab::zero(32, 64);
    /// assert!(slab.to_lanes().iter().all(|l| l.is_zero()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`crate::MAX_WIDTH`], or if
    /// `lanes` is zero or exceeds [`Word::LANES`].
    pub fn zero(width: usize, lanes: usize) -> Self {
        assert!(
            (1..=crate::MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        assert!(
            (1..=W::LANES).contains(&lanes),
            "lanes must be in 1..={}, got {lanes}",
            W::LANES
        );
        Self {
            width,
            lanes,
            words: vec![W::ZERO; width],
        }
    }

    /// Transposes a slice of equal-width values into a slab (value `l`
    /// becomes lane `l`).
    ///
    /// ```
    /// use bitnum::batch::{BitSlab, Word};
    /// use bitnum::UBig;
    /// let slab: BitSlab = BitSlab::from_lanes(&[UBig::from_u128(0b10, 2), UBig::from_u128(0b01, 2)]);
    /// assert_eq!(slab.word(0).limb(0), 0b10); // lane 1 has bit 0 set
    /// assert_eq!(slab.word(1).limb(0), 0b01); // lane 0 has bit 1 set
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, holds more than [`Word::LANES`]
    /// values, or the values disagree on width.
    pub fn from_lanes(values: &[UBig]) -> Self {
        assert!(!values.is_empty(), "a slab needs at least one lane");
        let width = values[0].width();
        let mut slab = Self::zero(width, values.len());
        for (l, v) in values.iter().enumerate() {
            assert_eq!(v.width(), width, "lane {l} width mismatch");
            slab.set_lane_limbs(l, v.limbs());
        }
        slab
    }

    /// Writes lane `l` directly from little-endian `u64` limbs — the
    /// zero-copy ingest path of the binary wire protocol: a frame's limb
    /// bytes scatter straight into the transposed layout with no
    /// intermediate [`UBig`] and no per-digit parsing.
    ///
    /// The lane must currently be all-zero (as produced by
    /// [`BitSlab::zero`]); the limbs are OR-ed in, and debug builds verify
    /// the precondition. `limbs` must be exactly `width.div_ceil(64)`
    /// limbs with no bits set at or above `width` — the caller (protocol
    /// decoder or [`UBig::limbs`]) has already validated the value, so a
    /// violation here is a bug, not bad input.
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::UBig;
    /// let mut slab: BitSlab = BitSlab::zero(100, 2);
    /// slab.set_lane_limbs(1, &[0xdead_beef, 0x7]);
    /// assert_eq!(slab.lane(1), UBig::from_limbs(&[0xdead_beef, 0x7], 100));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes`, `limbs` is not exactly `width.div_ceil(64)`
    /// limbs, or the top limb carries bits at or above `width`. Debug
    /// builds also panic when the lane is not currently zero.
    pub fn set_lane_limbs(&mut self, l: usize, limbs: &[u64]) {
        assert!(
            l < self.lanes,
            "lane {l} out of range for {} lanes",
            self.lanes
        );
        assert_eq!(
            limbs.len(),
            self.width.div_ceil(64),
            "width {} needs {} limbs, got {}",
            self.width,
            self.width.div_ceil(64),
            limbs.len()
        );
        let used = self.width % 64;
        assert!(
            used == 0 || limbs[limbs.len() - 1] >> used == 0,
            "limbs carry bits at or above width {}",
            self.width
        );
        debug_assert!(
            self.words.iter().all(|w| !w.bit(l)),
            "lane {l} is not zero before set_lane_limbs"
        );
        for (li, &limb) in limbs.iter().enumerate() {
            let mut w = limb;
            while w != 0 {
                let i = li * 64 + w.trailing_zeros() as usize;
                self.words[i].set_bit(l);
                w &= w - 1;
            }
        }
    }

    /// Overwrites lane `l` from little-endian `u64` limbs — the dirty-slab
    /// twin of [`BitSlab::set_lane_limbs`]: every bit of the lane is
    /// written (set **or cleared**), so the lane needs no pre-zeroing and
    /// whole slabs can be recycled across batches without a zeroing sweep
    /// (see [`SlabBuilder::recycle`]).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::UBig;
    /// let mut slab: BitSlab = BitSlab::from_lanes(&[UBig::from_u128(0xffff, 100)]);
    /// slab.overwrite_lane_limbs(0, &[0xdead_beef, 0x7]); // stale bits vanish
    /// assert_eq!(slab.lane(0), UBig::from_limbs(&[0xdead_beef, 0x7], 100));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes`, `limbs` is not exactly `width.div_ceil(64)`
    /// limbs, or the top limb carries bits at or above `width`.
    pub fn overwrite_lane_limbs(&mut self, l: usize, limbs: &[u64]) {
        assert!(
            l < self.lanes,
            "lane {l} out of range for {} lanes",
            self.lanes
        );
        assert_eq!(
            limbs.len(),
            self.width.div_ceil(64),
            "width {} needs {} limbs, got {}",
            self.width,
            self.width.div_ceil(64),
            limbs.len()
        );
        let used = self.width % 64;
        assert!(
            used == 0 || limbs[limbs.len() - 1] >> used == 0,
            "limbs carry bits at or above width {}",
            self.width
        );
        for (li, &limb) in limbs.iter().enumerate() {
            let base = li * 64;
            let top = (base + 64).min(self.width);
            for i in base..top {
                if (limb >> (i - base)) & 1 == 1 {
                    self.words[i].set_bit(l);
                } else {
                    self.words[i].clear_bit(l);
                }
            }
        }
    }

    /// Clears every bit of lane `l` — the lane-level eraser for callers
    /// that retire a lane without immediately rewriting it.
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes`.
    pub fn clear_lane(&mut self, l: usize) {
        assert!(
            l < self.lanes,
            "lane {l} out of range for {} lanes",
            self.lanes
        );
        for w in &mut self.words {
            w.clear_bit(l);
        }
    }

    /// Gathers lane `l` into little-endian `u64` limbs — the egress twin
    /// of [`BitSlab::set_lane_limbs`], filling a caller-provided buffer so
    /// binary-mode responses need no [`UBig`] or hex formatting.
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::UBig;
    /// let slab: BitSlab = BitSlab::from_lanes(&[UBig::from_u128(0xfeed, 72)]);
    /// let mut limbs = [1u64; 2];
    /// slab.write_lane_limbs(0, &mut limbs);
    /// assert_eq!(limbs, [0xfeed, 0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes` or `out` is not exactly `width.div_ceil(64)`
    /// limbs.
    pub fn write_lane_limbs(&self, l: usize, out: &mut [u64]) {
        assert!(
            l < self.lanes,
            "lane {l} out of range for {} lanes",
            self.lanes
        );
        assert_eq!(
            out.len(),
            self.width.div_ceil(64),
            "width {} needs {} limbs, got {}",
            self.width,
            self.width.div_ceil(64),
            out.len()
        );
        out.fill(0);
        let (limb, shift) = (l / 64, l % 64);
        for (i, w) in self.words.iter().enumerate() {
            out[i / 64] |= ((w.limb(limb) >> shift) & 1) << (i % 64);
        }
    }

    /// Shrinks the lane count to `lanes` and masks every word down to the
    /// new lane mask — the builder's seal for a partial tail chunk. The
    /// masking sweep makes the seal sound even when lanes at or beyond the
    /// new count hold stale bits (a recycled chunk, see
    /// [`SlabBuilder::recycle`]), restoring the slab invariant that no bit
    /// above the lane count is set.
    fn truncated(mut self, lanes: usize) -> Self {
        debug_assert!((1..=self.lanes).contains(&lanes));
        self.lanes = lanes;
        let mask = self.lane_mask();
        for w in &mut self.words {
            *w = *w & mask;
        }
        self
    }

    /// Fills a slab with uniformly random lanes (equivalent to transposing
    /// `lanes` draws of [`UBig::random`], but sampled directly in
    /// transposed layout, limb by limb).
    ///
    /// ```
    /// use bitnum::batch::{BitSlab, Word};
    /// use bitnum::rng::Xoshiro256;
    /// let mut rng = Xoshiro256::seed_from_u64(1);
    /// let slab: BitSlab = BitSlab::random(64, 16, &mut rng);
    /// assert_eq!(slab.lanes(), 16);
    /// let mask = slab.lane_mask();
    /// assert!(slab.words().iter().all(|&w| (w & !mask).is_zero()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`BitSlab::zero`].
    pub fn random<R: RandomBits + ?Sized>(width: usize, lanes: usize, rng: &mut R) -> Self {
        let mut slab = Self::zero(width, lanes);
        let mask = slab.lane_mask();
        for w in &mut slab.words {
            for li in 0..W::LIMBS {
                w.set_limb(li, rng.next_u64());
            }
            *w = *w & mask;
        }
        slab
    }

    /// The bit width of each lane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of lanes held.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The word mask with one bit set per lane
    /// ([`Word::ONES`] at [`Word::LANES`] lanes).
    ///
    /// ```
    /// use bitnum::batch::{BitSlab, Word, W256};
    /// assert_eq!(BitSlab::<u64>::zero(8, 3).lane_mask(), 0b111);
    /// assert_eq!(BitSlab::<W256>::zero(8, 256).lane_mask(), W256::ONES);
    /// ```
    pub fn lane_mask(&self) -> W {
        W::lane_mask(self.lanes)
    }

    /// The word of bit position `i`: bit `l` is lane `l`'s bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn word(&self, i: usize) -> W {
        self.words[i]
    }

    /// All bit-position words, LSB position first.
    pub fn words(&self) -> &[W] {
        &self.words
    }

    /// Mutable access to the bit-position words for in-place kernels.
    ///
    /// The caller must keep lane bits `>= lanes()` zero; kernels that only
    /// combine existing words (e.g. [`ripple_words`] with a masked
    /// carry-in) preserve this automatically. Use [`BitSlab::set_word`]
    /// when the new word may carry stray high bits.
    pub fn words_mut(&mut self) -> &mut [W] {
        &mut self.words
    }

    /// Replaces the word of bit position `i`, masking off lane bits beyond
    /// [`BitSlab::lanes`].
    ///
    /// ```
    /// use bitnum::batch::{BitSlab, Word};
    /// let mut slab: BitSlab = BitSlab::zero(4, 2);
    /// slab.set_word(3, bitnum::batch::DefaultWord::ONES); // stray bits dropped
    /// assert_eq!(slab.word(3).limb(0), 0b11);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_word(&mut self, i: usize, word: W) {
        let mask = self.lane_mask();
        self.words[i] = word & mask;
    }

    /// Extracts lane `l` as a [`UBig`] (the inverse of
    /// [`BitSlab::from_lanes`] for one value).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::UBig;
    /// let v = UBig::from_u128(0xdead, 64);
    /// let slab: BitSlab = BitSlab::from_lanes(&[UBig::zero(64), v.clone()]);
    /// assert_eq!(slab.lane(1), v);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes`.
    pub fn lane(&self, l: usize) -> UBig {
        let mut limbs = vec![0u64; self.width.div_ceil(64)];
        self.write_lane_limbs(l, &mut limbs);
        UBig::from_limbs(&limbs, self.width)
    }

    /// Untransposes the slab back into one [`UBig`] per lane.
    pub fn to_lanes(&self) -> Vec<UBig> {
        (0..self.lanes).map(|l| self.lane(l)).collect()
    }
}

/// Bit-sliced ripple-carry addition: adds `a` and `b` word-parallel across
/// lanes, writing sum words into `sum` and returning the carry-out word.
///
/// `cin` is a *per-lane* carry-in word (bit `l` is lane `l`'s carry-in), so
/// the same kernel serves as a full-width adder (`cin = W::ZERO`), the
/// carry-in-1 leg of a carry-select block (`cin = lane_mask`), or a
/// speculative window fed by a per-lane select signal. The carry recurrence
/// per bit position is the usual `c' = g | (p & c)` on whole words:
/// [`Word::LANES`] lanes per ~5 word operations.
///
/// All three slices must come from slabs of identical width and lane
/// count, restricted to the same bit range. `lane_mask` is that slab lane
/// mask ([`BitSlab::lane_mask`]): `cin` — and, in debug builds, every
/// operand word — must have no bits set beyond it, **in any limb**.
/// Violations are the classic slab-corruption bug (a stray carry bit
/// silently invents a phantom lane), so they are enforced with
/// `debug_assert!` at the top of the kernel and fail loudly under
/// `cargo test` instead of corrupting lanes.
///
/// # Example
///
/// ```
/// use bitnum::batch::{ripple_words, BitSlab, DefaultWord, Word};
/// use bitnum::UBig;
///
/// let a: BitSlab = BitSlab::from_lanes(&vec![UBig::from_u128(9, 4); 3]);
/// let b = BitSlab::from_lanes(&vec![UBig::from_u128(6, 4); 3]);
/// let mut s = BitSlab::zero(4, 3);
/// // Carry-in only into lane 1: lanes 0 and 2 get 15, lane 1 wraps to 0.
/// let cin = DefaultWord::from_low(0b010);
/// let cout = ripple_words(a.words(), b.words(), cin, a.lane_mask(), s.words_mut());
/// assert_eq!(s.lane(0).to_u128(), Some(15));
/// assert_eq!(s.lane(1).to_u128(), Some(0));
/// assert_eq!(cout, cin);
/// ```
///
/// # Panics
///
/// Panics if the slice lengths differ. Debug builds panic when `cin` or an
/// operand word carries bits beyond `lane_mask`.
pub fn ripple_words<W: Word>(a: &[W], b: &[W], cin: W, lane_mask: W, sum: &mut [W]) -> W {
    assert_eq!(a.len(), b.len(), "operand word counts differ");
    assert_eq!(a.len(), sum.len(), "sum word count differs");
    debug_assert!(
        (cin & !lane_mask).is_zero(),
        "carry-in word {cin:?} has bits beyond the lane mask {lane_mask:?}"
    );
    debug_assert!(
        a.iter().chain(b).all(|&w| (w & !lane_mask).is_zero()),
        "operand words carry bits beyond the lane mask {lane_mask:?}"
    );
    let mut carry = cin;
    for ((&aw, &bw), sw) in a.iter().zip(b).zip(sum.iter_mut()) {
        let p = aw ^ bw;
        let g = aw & bw;
        *sw = p ^ carry;
        carry = g | (p & carry);
    }
    carry
}

/// A batch of arbitrarily many equal-width values, stored as a sequence of
/// [`BitSlab`] chunks.
///
/// Every chunk holds exactly [`Word::LANES`] lanes except the last, which
/// holds the remainder (`1..=Word::LANES`). Global lane `l` lives in chunk
/// `l / W::LANES` at chunk-lane `l % W::LANES`, and each chunk maintains
/// the [`BitSlab`] lane-mask invariant independently — so any single-word
/// kernel scales to arbitrary batch sizes by iterating
/// [`WideSlab::chunks`], and sharded executors can split the chunk list
/// across threads without touching lane data.
///
/// # Example
///
/// ```
/// use bitnum::batch::{BitSlab, Word, WideSlab};
/// use bitnum::UBig;
///
/// let values: Vec<UBig> = (0..300).map(|v| UBig::from_u128(v, 16)).collect();
/// let slab: WideSlab = WideSlab::from_lanes(&values);
/// assert_eq!(slab.lanes(), 300);
/// assert_eq!(slab.chunks().len(), 300usize.div_ceil(slab.lanes_per_chunk()));
/// assert_eq!(slab.lane(299).to_u128(), Some(299));
/// assert_eq!(slab.to_lanes(), values);
///
/// // With the word named explicitly, the chunking is pinned:
/// let narrow = WideSlab::<u64>::from_lanes(&values);
/// assert_eq!(narrow.chunks().len(), 5); // 4 × 64 + 44
/// assert_eq!(narrow.chunks()[4].lanes(), 44);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WideSlab<W: Word = DefaultWord> {
    width: usize,
    lanes: usize,
    chunks: Vec<BitSlab<W>>,
}

impl<W: Word> WideSlab<W> {
    /// Creates an all-zero wide slab of `lanes` lanes of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`crate::MAX_WIDTH`], or if
    /// `lanes` is zero.
    pub fn zero(width: usize, lanes: usize) -> Self {
        assert!(lanes >= 1, "a wide slab needs at least one lane");
        let chunks = Self::chunk_sizes(lanes)
            .map(|chunk_lanes| BitSlab::zero(width, chunk_lanes))
            .collect();
        Self {
            width,
            lanes,
            chunks,
        }
    }

    /// Transposes a slice of equal-width values into chunked slabs (value
    /// `l` becomes lane `l`).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or the values disagree on width.
    pub fn from_lanes(values: &[UBig]) -> Self {
        assert!(!values.is_empty(), "a wide slab needs at least one lane");
        let width = values[0].width();
        // BitSlab::from_lanes only checks widths within its own chunk, so
        // enforce agreement across chunk boundaries here.
        for (l, v) in values.iter().enumerate() {
            assert_eq!(v.width(), width, "lane {l} width mismatch");
        }
        let chunks: Vec<BitSlab<W>> = values.chunks(W::LANES).map(BitSlab::from_lanes).collect();
        Self {
            width,
            lanes: values.len(),
            chunks,
        }
    }

    /// Reassembles a wide slab from chunks (the inverse of
    /// [`WideSlab::chunks`], as produced by per-chunk kernels).
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty, the chunks disagree on width, or any
    /// chunk but the last holds fewer than [`Word::LANES`] lanes.
    pub fn from_chunks(chunks: Vec<BitSlab<W>>) -> Self {
        assert!(!chunks.is_empty(), "a wide slab needs at least one chunk");
        let width = chunks[0].width();
        let mut lanes = 0;
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.width(), width, "chunk {i} width mismatch");
            assert!(
                chunk.lanes() == W::LANES || i + 1 == chunks.len(),
                "chunk {i} is partial ({} lanes) but not last",
                chunk.lanes()
            );
            lanes += chunk.lanes();
        }
        Self {
            width,
            lanes,
            chunks,
        }
    }

    /// Fills a wide slab with uniformly random lanes, chunk by chunk (the
    /// chunked equivalent of [`BitSlab::random`]).
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`WideSlab::zero`].
    pub fn random<R: RandomBits + ?Sized>(width: usize, lanes: usize, rng: &mut R) -> Self {
        assert!(lanes >= 1, "a wide slab needs at least one lane");
        let chunks = Self::chunk_sizes(lanes)
            .map(|chunk_lanes| BitSlab::random(width, chunk_lanes, rng))
            .collect();
        Self {
            width,
            lanes,
            chunks,
        }
    }

    fn chunk_sizes(lanes: usize) -> impl Iterator<Item = usize> {
        let full = lanes / W::LANES;
        let rem = lanes % W::LANES;
        std::iter::repeat_n(W::LANES, full).chain((rem > 0).then_some(rem))
    }

    /// The bit width of each lane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The total number of lanes across all chunks.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lanes per full chunk — [`Word::LANES`] of the slab's word, exposed
    /// so word-generic callers can compute chunk addressing without
    /// naming `W`.
    pub fn lanes_per_chunk(&self) -> usize {
        W::LANES
    }

    /// The per-word chunks, global lane order: chunk `c` holds lanes
    /// `c * W::LANES ..`.
    pub fn chunks(&self) -> &[BitSlab<W>] {
        &self.chunks
    }

    /// Extracts global lane `l` as a [`UBig`].
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes`.
    pub fn lane(&self, l: usize) -> UBig {
        assert!(
            l < self.lanes,
            "lane {l} out of range for {} lanes",
            self.lanes
        );
        self.chunks[l / W::LANES].lane(l % W::LANES)
    }

    /// Gathers global lane `l` into little-endian `u64` limbs without
    /// building a [`UBig`] — see [`BitSlab::write_lane_limbs`].
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes` or `out` is not exactly `width.div_ceil(64)`
    /// limbs.
    pub fn write_lane_limbs(&self, l: usize, out: &mut [u64]) {
        assert!(
            l < self.lanes,
            "lane {l} out of range for {} lanes",
            self.lanes
        );
        self.chunks[l / W::LANES].write_lane_limbs(l % W::LANES, out);
    }

    /// Untransposes the wide slab back into one [`UBig`] per lane.
    pub fn to_lanes(&self) -> Vec<UBig> {
        self.chunks.iter().flat_map(|c| c.to_lanes()).collect()
    }
}

/// Builds a [`WideSlab`] one lane at a time from raw limbs — the ingest
/// side of the binary wire protocol, where operands arrive as
/// little-endian `u64` limb runs and must land in transposed layout
/// without ever becoming a [`UBig`].
///
/// Lanes are appended in arrival order with
/// [`SlabBuilder::push_lane_limbs`] (or [`SlabBuilder::push_lane`] for
/// callers that do hold a [`UBig`]); chunking at [`Word::LANES`] lanes is
/// handled internally, and [`SlabBuilder::finish`] seals the possibly
/// partial tail chunk into a well-formed [`WideSlab`].
///
/// # Example
///
/// ```
/// use bitnum::batch::SlabBuilder;
/// use bitnum::UBig;
///
/// let mut builder: SlabBuilder = SlabBuilder::new(100);
/// builder.push_lane_limbs(&[u64::MAX, 0x5]);
/// builder.push_lane(&UBig::from_u128(42, 100));
/// let slab = builder.finish();
/// assert_eq!(slab.lanes(), 2);
/// assert_eq!(slab.lane(0), UBig::from_limbs(&[u64::MAX, 0x5], 100));
/// assert_eq!(slab.lane(1).to_u128(), Some(42));
/// ```
#[derive(Debug)]
pub struct SlabBuilder<W: Word = DefaultWord> {
    width: usize,
    lanes: usize,
    chunks: Vec<BitSlab<W>>,
    /// The open chunk, allocated at full [`Word::LANES`] capacity. Lanes
    /// are written through the overwrite path
    /// ([`BitSlab::overwrite_lane_limbs`]), so the chunk needs no
    /// pre-zeroing and recycled (dirty) chunks are fine; sealing a partial
    /// tail masks stale lanes away ([`BitSlab::truncated`]).
    current: BitSlab<W>,
    open_lanes: usize,
    /// Dirty full-capacity chunks reclaimed by [`SlabBuilder::recycle`],
    /// consumed on chunk rollover before any fresh allocation.
    spare: Vec<BitSlab<W>>,
}

impl<W: Word> SlabBuilder<W> {
    /// Creates an empty builder for lanes of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`crate::MAX_WIDTH`].
    pub fn new(width: usize) -> Self {
        Self {
            width,
            lanes: 0,
            chunks: Vec::new(),
            current: BitSlab::zero(width, W::LANES),
            open_lanes: 0,
            spare: Vec::new(),
        }
    }

    /// Reclaims a finished slab's chunk allocations for a new build at the
    /// same width **without zeroing them** — the allocation-recycling loop
    /// of a long-running batcher. Sound because every push overwrites its
    /// lane bit-for-bit and [`SlabBuilder::finish`] masks the partial
    /// tail, so stale bits from the previous batch can never leak into the
    /// next one.
    ///
    /// ```
    /// use bitnum::batch::SlabBuilder;
    /// use bitnum::UBig;
    ///
    /// let mut builder: SlabBuilder = SlabBuilder::new(64);
    /// builder.push_lane(&UBig::from_u128(u64::MAX as u128, 64));
    /// let mut builder = SlabBuilder::recycle(builder.finish());
    /// builder.push_lane_limbs(&[42]); // lane 0 reused, stale bits gone
    /// assert_eq!(builder.finish().lane(0).to_u128(), Some(42));
    /// ```
    pub fn recycle(slab: WideSlab<W>) -> Self {
        let width = slab.width;
        let mut spare = slab.chunks;
        for chunk in &mut spare {
            // Reopen every harvested chunk at full capacity; the words
            // keep their stale bits.
            chunk.lanes = W::LANES;
        }
        let current = spare
            .pop()
            .unwrap_or_else(|| BitSlab::zero(width, W::LANES));
        Self {
            width,
            lanes: 0,
            chunks: Vec::new(),
            current,
            open_lanes: 0,
            spare,
        }
    }

    /// The bit width of each lane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Lanes pushed so far.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Appends one lane from little-endian `u64` limbs — a direct
    /// scatter into the transposed words via
    /// [`BitSlab::overwrite_lane_limbs`]. The overwrite path writes every
    /// bit of the lane, so the builder's chunks need no pre-zeroing and
    /// recycled chunks ([`SlabBuilder::recycle`]) are ingested as-is.
    ///
    /// # Panics
    ///
    /// Panics on the limb-shape conditions of
    /// [`BitSlab::overwrite_lane_limbs`]: not exactly `width.div_ceil(64)`
    /// limbs, or bits set at or above the width.
    pub fn push_lane_limbs(&mut self, limbs: &[u64]) {
        self.current.overwrite_lane_limbs(self.open_lanes, limbs);
        self.open_lanes += 1;
        self.lanes += 1;
        if self.open_lanes == W::LANES {
            let next = self
                .spare
                .pop()
                .unwrap_or_else(|| BitSlab::zero(self.width, W::LANES));
            let full = std::mem::replace(&mut self.current, next);
            self.chunks.push(full);
            self.open_lanes = 0;
        }
    }

    /// Appends one lane from a [`UBig`] — the text-protocol path, same
    /// scatter over [`UBig::limbs`].
    ///
    /// # Panics
    ///
    /// Panics if `value` is not the builder's width.
    pub fn push_lane(&mut self, value: &UBig) {
        assert_eq!(value.width(), self.width, "lane width mismatch");
        self.push_lane_limbs(value.limbs());
    }

    /// Seals the pending lanes into a [`WideSlab`].
    ///
    /// # Panics
    ///
    /// Panics if no lane was pushed — a slab needs at least one lane.
    pub fn finish(mut self) -> WideSlab<W> {
        assert!(self.lanes >= 1, "a wide slab needs at least one lane");
        if self.open_lanes > 0 {
            self.chunks.push(self.current.truncated(self.open_lanes));
        }
        WideSlab::from_chunks(self.chunks)
    }
}

impl<W: Word> From<BitSlab<W>> for WideSlab<W> {
    /// Wraps a single ≤one-word slab as a one-chunk wide slab.
    fn from(chunk: BitSlab<W>) -> Self {
        Self {
            width: chunk.width(),
            lanes: chunk.lanes(),
            chunks: vec![chunk],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn transpose_roundtrip_for<W: Word>() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for (width, lanes) in [
            (1usize, 1usize),
            (8, 3),
            (64, 64),
            (65, 17),
            (130, 5),
            (512, W::LANES),
        ] {
            let values: Vec<UBig> = (0..lanes).map(|_| UBig::random(width, &mut rng)).collect();
            let slab = BitSlab::<W>::from_lanes(&values);
            assert_eq!(slab.to_lanes(), values, "width={width} lanes={lanes}");
            for (l, v) in values.iter().enumerate() {
                assert_eq!(&slab.lane(l), v);
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        transpose_roundtrip_for::<u64>();
        transpose_roundtrip_for::<W256>();
    }

    #[test]
    fn words_respect_lane_mask() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let slab = BitSlab::<u64>::random(100, 7, &mut rng);
        assert_eq!(slab.lane_mask(), 0x7f);
        assert!(slab.words().iter().all(|&w| w & !0x7f == 0));
        let mut slab = slab;
        slab.set_word(0, u64::MAX);
        assert_eq!(slab.word(0), 0x7f);
        // Same invariant with the wide word, across limb boundaries.
        let wide = BitSlab::<W256>::random(100, 70, &mut rng);
        let mask = wide.lane_mask();
        assert_eq!(mask.limb(1), (1u64 << 6) - 1);
        assert!(wide.words().iter().all(|&w| (w & !mask).is_zero()));
        let mut wide = wide;
        wide.set_word(0, W256::ONES);
        assert_eq!(wide.word(0), mask);
    }

    fn ripple_matches_scalar_adds_for<W: Word>() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for (width, lanes) in [(64usize, 64usize), (65, W::LANES), (31, 9), (128, 1)] {
            let a = BitSlab::<W>::random(width, lanes, &mut rng);
            let b = BitSlab::<W>::random(width, lanes, &mut rng);
            let mut cin = W::ZERO;
            for li in 0..W::LIMBS {
                cin.set_limb(li, rng.next_u64());
            }
            cin = cin & a.lane_mask();
            let mut sum = BitSlab::<W>::zero(width, lanes);
            let cout = ripple_words(a.words(), b.words(), cin, a.lane_mask(), sum.words_mut());
            for l in 0..lanes {
                let (s, c) = a.lane(l).add_with_carry(&b.lane(l), cin.bit(l));
                assert_eq!(sum.lane(l), s, "lane {l} width {width}");
                assert_eq!(cout.bit(l), c, "cout lane {l}");
            }
        }
    }

    #[test]
    fn ripple_matches_scalar_adds() {
        ripple_matches_scalar_adds_for::<u64>();
        ripple_matches_scalar_adds_for::<W256>();
    }

    #[test]
    #[should_panic(expected = "lanes must be in")]
    fn too_many_lanes_panic() {
        let _ = BitSlab::<u64>::zero(8, 65);
    }

    #[test]
    #[should_panic(expected = "lanes must be in")]
    fn too_many_lanes_panic_w256() {
        let _ = BitSlab::<W256>::zero(8, 257);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "beyond the lane mask")]
    fn unmasked_carry_in_fails_loudly() {
        // The CHANGES.md gotcha, enforced: a carry-in word with bits beyond
        // the lane mask must panic in debug builds, not corrupt lanes.
        let a: BitSlab = BitSlab::zero(8, 3);
        let b: BitSlab = BitSlab::zero(8, 3);
        let mut sum: BitSlab = BitSlab::zero(8, 3);
        let _ = ripple_words(
            a.words(),
            b.words(),
            DefaultWord::ONES,
            a.lane_mask(),
            sum.words_mut(),
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "beyond the lane mask")]
    fn unmasked_high_limb_carry_fails_loudly() {
        // The per-limb generalization of the same gotcha: the stray bit
        // lives in limb 1, beyond anything a u64 mask would see.
        let a = BitSlab::<W256>::zero(8, 3);
        let b = BitSlab::<W256>::zero(8, 3);
        let mut sum = BitSlab::<W256>::zero(8, 3);
        let mut cin = W256::ZERO;
        cin.set_bit(64);
        let _ = ripple_words(a.words(), b.words(), cin, a.lane_mask(), sum.words_mut());
    }

    fn wide_slab_roundtrip_for<W: Word>() {
        let mut rng = Xoshiro256::seed_from_u64(12);
        for lanes in [
            1usize,
            63,
            64,
            65,
            100,
            W::LANES - 1,
            W::LANES,
            W::LANES + 1,
            3 * W::LANES + 8,
        ] {
            let values: Vec<UBig> = (0..lanes).map(|_| UBig::random(40, &mut rng)).collect();
            let slab = WideSlab::<W>::from_lanes(&values);
            assert_eq!(slab.lanes(), lanes);
            assert_eq!(slab.width(), 40);
            assert_eq!(slab.lanes_per_chunk(), W::LANES);
            assert_eq!(slab.chunks().len(), lanes.div_ceil(W::LANES));
            for (i, chunk) in slab.chunks().iter().enumerate() {
                let expect = if i + 1 < slab.chunks().len() {
                    W::LANES
                } else {
                    lanes - i * W::LANES
                };
                assert_eq!(chunk.lanes(), expect, "lanes={lanes} chunk={i}");
            }
            assert_eq!(slab.to_lanes(), values, "lanes={lanes}");
            for (l, v) in values.iter().enumerate() {
                assert_eq!(&slab.lane(l), v);
            }
            // from_chunks is the inverse of chunks().
            let rebuilt = WideSlab::from_chunks(slab.chunks().to_vec());
            assert_eq!(rebuilt, slab);
        }
    }

    #[test]
    fn wide_slab_roundtrip_and_chunking() {
        wide_slab_roundtrip_for::<u64>();
        wide_slab_roundtrip_for::<W256>();
    }

    #[test]
    fn wide_slab_random_matches_chunked_draws() {
        // random() must draw chunk by chunk so sharded reseeding composes.
        let lanes = 2 * DefaultWord::LANES + 2;
        let slab: WideSlab = WideSlab::random(32, lanes, &mut Xoshiro256::seed_from_u64(77));
        let mut rng = Xoshiro256::seed_from_u64(77);
        for chunk in slab.chunks() {
            assert_eq!(chunk, &BitSlab::random(32, chunk.lanes(), &mut rng));
        }
        assert_eq!(WideSlab::<DefaultWord>::zero(32, lanes).lanes(), lanes);
    }

    #[test]
    fn wide_slab_from_single_chunk() {
        let chunk: BitSlab = BitSlab::random(16, 10, &mut Xoshiro256::seed_from_u64(4));
        let wide = WideSlab::from(chunk.clone());
        assert_eq!(wide.lanes(), 10);
        assert_eq!(wide.chunks(), std::slice::from_ref(&chunk));
    }

    #[test]
    #[should_panic(expected = "partial")]
    fn wide_slab_partial_chunk_in_middle_panics() {
        let _ = WideSlab::from_chunks(vec![
            BitSlab::<u64>::zero(8, 10),
            BitSlab::<u64>::zero(8, 64),
        ]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wide_slab_cross_chunk_width_mismatch_panics() {
        // The mismatching lane sits in the second chunk: per-chunk
        // validation alone would miss it.
        let mut values = vec![UBig::zero(8); 64];
        values.push(UBig::zero(16));
        let _ = WideSlab::<u64>::from_lanes(&values);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_lanes_panic() {
        let _ = BitSlab::<DefaultWord>::from_lanes(&[UBig::zero(8), UBig::zero(9)]);
    }

    fn limb_ingest_matches_from_lanes_for<W: Word>() {
        // The binary-protocol ingest contract: limbs scattered straight
        // into the slab layout are bit-identical to the UBig transpose
        // path, for widths with partial top limbs and lane counts with
        // partial tail chunks.
        let mut rng = Xoshiro256::seed_from_u64(31);
        for (width, lanes) in [
            (1usize, 1usize),
            (64, 3),
            (100, W::LANES),
            (130, W::LANES + 9),
            (64, 2 * W::LANES),
            (24, 3 * W::LANES + 1),
        ] {
            let values: Vec<UBig> = (0..lanes).map(|_| UBig::random(width, &mut rng)).collect();
            let mut builder = SlabBuilder::<W>::new(width);
            for v in &values {
                builder.push_lane_limbs(v.limbs());
            }
            let built = builder.finish();
            assert_eq!(
                built,
                WideSlab::from_lanes(&values),
                "width={width} lanes={lanes}"
            );
            // Egress round trip: gather each lane's limbs without a UBig
            // and compare against the source limbs.
            let mut limbs = vec![0u64; width.div_ceil(64)];
            for (l, v) in values.iter().enumerate() {
                built.write_lane_limbs(l, &mut limbs);
                assert_eq!(limbs, v.limbs(), "lane {l}");
            }
        }
    }

    #[test]
    fn limb_ingest_matches_from_lanes() {
        limb_ingest_matches_from_lanes_for::<u64>();
        limb_ingest_matches_from_lanes_for::<W256>();
    }

    fn set_lane_limbs_rejects_bad_shapes_for<W: Word>() {
        let mut slab = BitSlab::<W>::zero(100, 2);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slab.set_lane_limbs(0, &[1]); // 100 bits need 2 limbs
        }))
        .is_err());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slab.set_lane_limbs(0, &[0, 1 << 36]); // bit 100 is out of range
        }))
        .is_err());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slab.set_lane_limbs(2, &[0, 0]); // lane out of range
        }))
        .is_err());
        slab.set_lane_limbs(0, &[u64::MAX, (1 << 36) - 1]); // max value fits
        assert_eq!(slab.lane(0), UBig::ones(100));
    }

    #[test]
    fn set_lane_limbs_rejects_bad_shapes() {
        set_lane_limbs_rejects_bad_shapes_for::<u64>();
        set_lane_limbs_rejects_bad_shapes_for::<W256>();
    }

    fn overwrite_reuses_dirty_slab_for<W: Word>() {
        // The PR 8 gotcha: set_lane_limbs OR-s into the lane and requires
        // it zero. The overwrite path must rewrite a *dirty* lane exactly,
        // clearing stale bits the new value does not set.
        let mut rng = Xoshiro256::seed_from_u64(41);
        let width = 100;
        let lanes = W::LANES;
        let first: Vec<UBig> = (0..lanes).map(|_| UBig::random(width, &mut rng)).collect();
        let second: Vec<UBig> = (0..lanes).map(|_| UBig::random(width, &mut rng)).collect();
        let mut slab = BitSlab::<W>::from_lanes(&first);
        for (l, v) in second.iter().enumerate() {
            slab.overwrite_lane_limbs(l, v.limbs());
        }
        assert_eq!(slab, BitSlab::from_lanes(&second));
        // Same shape panics as the OR path.
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slab.overwrite_lane_limbs(0, &[1]); // 100 bits need 2 limbs
        }))
        .is_err());
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            slab.overwrite_lane_limbs(0, &[0, 1 << 36]); // bit 100 out of range
        }))
        .is_err());
        // clear_lane erases exactly one lane.
        slab.clear_lane(1);
        assert_eq!(slab.lane(1), UBig::zero(width));
        assert_eq!(slab.lane(0), second[0]);
    }

    #[test]
    fn overwrite_lane_limbs_reuses_dirty_slab() {
        overwrite_reuses_dirty_slab_for::<u64>();
        overwrite_reuses_dirty_slab_for::<W256>();
    }

    fn recycled_builder_matches_fresh_build_for<W: Word>() {
        // A recycled (dirty, unzeroed) slab must rebuild bit-identically:
        // pushes overwrite their lanes and the partial-tail seal masks the
        // stale remainder — including the slab lane-mask invariant.
        let mut rng = Xoshiro256::seed_from_u64(42);
        let width = 72;
        let mut builder = SlabBuilder::<W>::new(width);
        for _ in 0..(2 * W::LANES) {
            builder.push_lane(&UBig::random(width, &mut rng));
        }
        let dirty = builder.finish();

        // Rebuild *fewer* lanes than the donor held, so both a partial
        // tail over a dirty chunk and an unused spare chunk are exercised.
        let fresh_lanes = W::LANES + W::LANES / 2 + 3;
        let values: Vec<UBig> = (0..fresh_lanes)
            .map(|_| UBig::random(width, &mut rng))
            .collect();
        let mut recycled = SlabBuilder::<W>::recycle(dirty);
        let mut fresh = SlabBuilder::<W>::new(width);
        for v in &values {
            recycled.push_lane_limbs(v.limbs());
            fresh.push_lane(v);
        }
        let (recycled, fresh) = (recycled.finish(), fresh.finish());
        assert_eq!(recycled, fresh);
        for chunk in recycled.chunks() {
            let mask = chunk.lane_mask();
            assert!(
                chunk.words().iter().all(|&w| (w & !mask).is_zero()),
                "stale bits above the lane count survived the seal"
            );
        }
    }

    #[test]
    fn recycled_builder_matches_fresh_build() {
        recycled_builder_matches_fresh_build_for::<u64>();
        recycled_builder_matches_fresh_build_for::<W256>();
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_builder_finish_panics() {
        let _ = SlabBuilder::<DefaultWord>::new(8).finish();
    }

    #[test]
    fn u64_and_w256_slabs_agree_lane_for_lane() {
        // The word-equivalence anchor at the storage layer: identical lane
        // data, identical ripple results, for lane counts that straddle
        // the u64 chunk boundary and leave partial final chunks.
        let mut rng = Xoshiro256::seed_from_u64(123);
        for lanes in [1usize, 63, 64, 65, 130, 200, 256] {
            let a: Vec<UBig> = (0..lanes).map(|_| UBig::random(50, &mut rng)).collect();
            let b: Vec<UBig> = (0..lanes).map(|_| UBig::random(50, &mut rng)).collect();
            let (wa, wb) = (
                WideSlab::<u64>::from_lanes(&a),
                WideSlab::<u64>::from_lanes(&b),
            );
            let (xa, xb) = (
                WideSlab::<W256>::from_lanes(&a),
                WideSlab::<W256>::from_lanes(&b),
            );
            assert_eq!(wa.to_lanes(), xa.to_lanes());
            for l in 0..lanes {
                assert_eq!(wa.lane(l), xa.lane(l), "lanes={lanes} lane={l}");
            }
            let ripple = |aw: &BitSlab<u64>, bw: &BitSlab<u64>| {
                let mut s = BitSlab::<u64>::zero(50, aw.lanes());
                let c = ripple_words(aw.words(), bw.words(), 0, aw.lane_mask(), s.words_mut());
                (s.to_lanes(), c)
            };
            let ripple_w = |aw: &BitSlab<W256>, bw: &BitSlab<W256>| {
                let mut s = BitSlab::<W256>::zero(50, aw.lanes());
                let c = ripple_words(
                    aw.words(),
                    bw.words(),
                    W256::ZERO,
                    aw.lane_mask(),
                    s.words_mut(),
                );
                (s.to_lanes(), c)
            };
            let narrow: Vec<UBig> = wa
                .chunks()
                .iter()
                .zip(wb.chunks())
                .flat_map(|(ca, cb)| ripple(ca, cb).0)
                .collect();
            let wide: Vec<UBig> = xa
                .chunks()
                .iter()
                .zip(xb.chunks())
                .flat_map(|(ca, cb)| ripple_w(ca, cb).0)
                .collect();
            assert_eq!(narrow, wide, "lanes={lanes}");
        }
    }
}

//! Bit-sliced (transposed) operand storage for batched evaluation.
//!
//! A [`BitSlab`] holds up to 64 independent `width`-bit values — *lanes* —
//! in transposed layout: one `u64` word per **bit position**, where bit `l`
//! of word `i` is lane `l`'s bit `i`. In this layout a single word
//! operation evaluates one gate of all lanes simultaneously, so a
//! `width`-step carry chain produces 64 full additions in `width` word
//! operations — the trick constrained-decoding engines and bit-sliced
//! cipher implementations use to make per-element work word-parallel.
//!
//! The adder crates build on two primitives here: the storage itself
//! (transpose in, compute word-parallel, transpose out) and the bit-sliced
//! ripple kernel [`ripple_words`], which is both a complete 64-lane adder
//! and the per-window building block of the speculative engines.
//!
//! # Example
//!
//! ```
//! use bitnum::batch::{ripple_words, BitSlab};
//! use bitnum::UBig;
//!
//! let a = BitSlab::from_lanes(&[UBig::from_u128(3, 8), UBig::from_u128(200, 8)]);
//! let b = BitSlab::from_lanes(&[UBig::from_u128(4, 8), UBig::from_u128(100, 8)]);
//! let mut sum = BitSlab::zero(8, 2);
//! let cout = ripple_words(a.words(), b.words(), 0, sum.words_mut());
//! assert_eq!(sum.lane(0).to_u128(), Some(7));
//! assert_eq!(sum.lane(1).to_u128(), Some(44)); // 300 mod 256
//! assert_eq!(cout, 0b10); // only lane 1 overflows 8 bits
//! ```

use crate::rng::RandomBits;
use crate::UBig;

/// Maximum number of lanes a [`BitSlab`] can hold (one per bit of a `u64`).
pub const MAX_LANES: usize = 64;

/// A batch of up to 64 equal-width values in transposed (bit-sliced) layout.
///
/// Lane `l`'s bit `i` is stored as bit `l` of [`BitSlab::word`]`(i)`; bits
/// at lane positions `>= lanes()` are guaranteed zero in every word (a type
/// invariant maintained by all constructors and [`BitSlab::set_word`]).
///
/// # Example
///
/// ```
/// use bitnum::batch::BitSlab;
/// use bitnum::UBig;
///
/// let lanes: Vec<UBig> = (0..5).map(|v| UBig::from_u128(v, 16)).collect();
/// let slab = BitSlab::from_lanes(&lanes);
/// assert_eq!(slab.width(), 16);
/// assert_eq!(slab.lanes(), 5);
/// // Bit 0 across lanes: values 1 and 3 are odd -> lanes 1 and 3 set.
/// assert_eq!(slab.word(0), 0b01010);
/// assert_eq!(slab.to_lanes(), lanes);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BitSlab {
    width: usize,
    lanes: usize,
    /// `words[i]` holds bit `i` of every lane.
    words: Vec<u64>,
}

impl BitSlab {
    /// Creates an all-zero slab of `lanes` lanes of `width` bits each.
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// let slab = BitSlab::zero(32, 64);
    /// assert!(slab.to_lanes().iter().all(|l| l.is_zero()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`crate::MAX_WIDTH`], or if
    /// `lanes` is zero or exceeds [`MAX_LANES`].
    pub fn zero(width: usize, lanes: usize) -> Self {
        assert!(
            width >= 1 && width <= crate::MAX_WIDTH,
            "unsupported width {width}"
        );
        assert!(
            lanes >= 1 && lanes <= MAX_LANES,
            "lanes must be in 1..={MAX_LANES}, got {lanes}"
        );
        Self { width, lanes, words: vec![0; width] }
    }

    /// Transposes a slice of equal-width values into a slab (value `l`
    /// becomes lane `l`).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::UBig;
    /// let slab = BitSlab::from_lanes(&[UBig::from_u128(0b10, 2), UBig::from_u128(0b01, 2)]);
    /// assert_eq!(slab.word(0), 0b10); // lane 1 has bit 0 set
    /// assert_eq!(slab.word(1), 0b01); // lane 0 has bit 1 set
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, holds more than [`MAX_LANES`] values,
    /// or the values disagree on width.
    pub fn from_lanes(values: &[UBig]) -> Self {
        assert!(!values.is_empty(), "a slab needs at least one lane");
        let width = values[0].width();
        let mut slab = Self::zero(width, values.len());
        for (l, v) in values.iter().enumerate() {
            assert_eq!(v.width(), width, "lane {l} width mismatch");
            for (li, &limb) in v.limbs().iter().enumerate() {
                let mut w = limb;
                while w != 0 {
                    let i = li * 64 + w.trailing_zeros() as usize;
                    slab.words[i] |= 1 << l;
                    w &= w - 1;
                }
            }
        }
        slab
    }

    /// Fills a slab with uniformly random lanes (equivalent to transposing
    /// `lanes` draws of [`UBig::random`], but sampled directly in
    /// transposed layout).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::rng::Xoshiro256;
    /// let mut rng = Xoshiro256::seed_from_u64(1);
    /// let slab = BitSlab::random(64, 16, &mut rng);
    /// assert_eq!(slab.lanes(), 16);
    /// assert!(slab.words().iter().all(|&w| w <= slab.lane_mask()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`BitSlab::zero`].
    pub fn random<R: RandomBits + ?Sized>(width: usize, lanes: usize, rng: &mut R) -> Self {
        let mut slab = Self::zero(width, lanes);
        let mask = slab.lane_mask();
        for w in &mut slab.words {
            *w = rng.next_u64() & mask;
        }
        slab
    }

    /// The bit width of each lane.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of lanes held.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The word mask with one bit set per lane
    /// (`u64::MAX` at 64 lanes).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// assert_eq!(BitSlab::zero(8, 3).lane_mask(), 0b111);
    /// assert_eq!(BitSlab::zero(8, 64).lane_mask(), u64::MAX);
    /// ```
    pub fn lane_mask(&self) -> u64 {
        if self.lanes == 64 {
            u64::MAX
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// The word of bit position `i`: bit `l` is lane `l`'s bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// All bit-position words, LSB position first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the bit-position words for in-place kernels.
    ///
    /// The caller must keep lane bits `>= lanes()` zero; kernels that only
    /// combine existing words (e.g. [`ripple_words`] with a masked
    /// carry-in) preserve this automatically. Use [`BitSlab::set_word`]
    /// when the new word may carry stray high bits.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Replaces the word of bit position `i`, masking off lane bits beyond
    /// [`BitSlab::lanes`].
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// let mut slab = BitSlab::zero(4, 2);
    /// slab.set_word(3, u64::MAX); // stray bits beyond lane 1 are dropped
    /// assert_eq!(slab.word(3), 0b11);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_word(&mut self, i: usize, word: u64) {
        let mask = self.lane_mask();
        self.words[i] = word & mask;
    }

    /// Extracts lane `l` as a [`UBig`] (the inverse of
    /// [`BitSlab::from_lanes`] for one value).
    ///
    /// ```
    /// use bitnum::batch::BitSlab;
    /// use bitnum::UBig;
    /// let v = UBig::from_u128(0xdead, 64);
    /// let slab = BitSlab::from_lanes(&[UBig::zero(64), v.clone()]);
    /// assert_eq!(slab.lane(1), v);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `l >= lanes`.
    pub fn lane(&self, l: usize) -> UBig {
        assert!(l < self.lanes, "lane {l} out of range for {} lanes", self.lanes);
        let mut limbs = vec![0u64; self.width.div_ceil(64)];
        for (i, &w) in self.words.iter().enumerate() {
            limbs[i / 64] |= ((w >> l) & 1) << (i % 64);
        }
        UBig::from_limbs(&limbs, self.width)
    }

    /// Untransposes the slab back into one [`UBig`] per lane.
    pub fn to_lanes(&self) -> Vec<UBig> {
        (0..self.lanes).map(|l| self.lane(l)).collect()
    }
}

/// Bit-sliced ripple-carry addition: adds `a` and `b` word-parallel across
/// lanes, writing sum words into `sum` and returning the carry-out word.
///
/// `cin` is a *per-lane* carry-in word (bit `l` is lane `l`'s carry-in), so
/// the same kernel serves as a full-width adder (`cin = 0`), the
/// carry-in-1 leg of a carry-select block (`cin = lane_mask`), or a
/// speculative window fed by a per-lane select signal. The carry recurrence
/// per bit position is the usual `c' = g | (p & c)` on whole words: 64
/// lanes per ~5 word operations.
///
/// All three slices must come from slabs of identical width and lane
/// count, restricted to the same bit range; `cin` must have no bits set
/// beyond the lane mask (guaranteed when it is `0`, a slab's
/// [`BitSlab::lane_mask`], or a word produced by this kernel from masked
/// inputs).
///
/// # Example
///
/// ```
/// use bitnum::batch::{ripple_words, BitSlab};
/// use bitnum::UBig;
///
/// let a = BitSlab::from_lanes(&vec![UBig::from_u128(9, 4); 3]);
/// let b = BitSlab::from_lanes(&vec![UBig::from_u128(6, 4); 3]);
/// let mut s = BitSlab::zero(4, 3);
/// // Carry-in only into lane 1: lanes 0 and 2 get 15, lane 1 wraps to 0.
/// let cout = ripple_words(a.words(), b.words(), 0b010, s.words_mut());
/// assert_eq!(s.lane(0).to_u128(), Some(15));
/// assert_eq!(s.lane(1).to_u128(), Some(0));
/// assert_eq!(cout, 0b010);
/// ```
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn ripple_words(a: &[u64], b: &[u64], cin: u64, sum: &mut [u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "operand word counts differ");
    assert_eq!(a.len(), sum.len(), "sum word count differs");
    let mut carry = cin;
    for ((&aw, &bw), sw) in a.iter().zip(b).zip(sum.iter_mut()) {
        let p = aw ^ bw;
        let g = aw & bw;
        *sw = p ^ carry;
        carry = g | (p & carry);
    }
    carry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn transpose_roundtrip() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for (width, lanes) in [(1usize, 1usize), (8, 3), (64, 64), (65, 17), (130, 5), (512, 64)] {
            let values: Vec<UBig> =
                (0..lanes).map(|_| UBig::random(width, &mut rng)).collect();
            let slab = BitSlab::from_lanes(&values);
            assert_eq!(slab.to_lanes(), values, "width={width} lanes={lanes}");
            for (l, v) in values.iter().enumerate() {
                assert_eq!(&slab.lane(l), v);
            }
        }
    }

    #[test]
    fn words_respect_lane_mask() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let slab = BitSlab::random(100, 7, &mut rng);
        assert_eq!(slab.lane_mask(), 0x7f);
        assert!(slab.words().iter().all(|&w| w & !0x7f == 0));
        let mut slab = slab;
        slab.set_word(0, u64::MAX);
        assert_eq!(slab.word(0), 0x7f);
    }

    #[test]
    fn ripple_matches_scalar_adds() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for (width, lanes) in [(64usize, 64usize), (65, 64), (31, 9), (128, 1)] {
            let a = BitSlab::random(width, lanes, &mut rng);
            let b = BitSlab::random(width, lanes, &mut rng);
            let cin = rng.next_u64() & a.lane_mask();
            let mut sum = BitSlab::zero(width, lanes);
            let cout = ripple_words(a.words(), b.words(), cin, sum.words_mut());
            for l in 0..lanes {
                let (s, c) = a.lane(l).add_with_carry(&b.lane(l), (cin >> l) & 1 == 1);
                assert_eq!(sum.lane(l), s, "lane {l} width {width}");
                assert_eq!((cout >> l) & 1 == 1, c, "cout lane {l}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lanes must be in")]
    fn too_many_lanes_panic() {
        let _ = BitSlab::zero(8, 65);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_lanes_panic() {
        let _ = BitSlab::from_lanes(&[UBig::zero(8), UBig::zero(9)]);
    }
}

//! Fixed-width big unsigned integers and bit-level kernels for adder research.
//!
//! This crate is the arithmetic substrate of the VLCSA reproduction. It
//! provides:
//!
//! * [`UBig`] — an arbitrary fixed-width unsigned integer stored on `u64`
//!   limbs, with full add/sub/mul/div support, two's-complement helpers and
//!   bitwise operations. Widths from 1 to 4096 bits are supported; every
//!   value knows its width and operations validate width agreement.
//! * [`pg`] — word-parallel propagate/generate kernels: the `(p, g)` signal
//!   planes of an addition, exact per-bit carries, and carry-chain run
//!   extraction. These are the primitives behind the Monte Carlo error-rate
//!   simulations (Ch. 3 and Ch. 7 of the paper).
//! * [`rng`] — small deterministic PRNGs (SplitMix64, Xoshiro256++) so every
//!   experiment in the workspace is exactly reproducible without an external
//!   RNG dependency.
//! * [`batch`] — bit-sliced (transposed) batch storage: lanes packed one
//!   [`batch::Word`] per bit position, so one word operation evaluates a
//!   gate of every lane's addition at once. The lane word is generic —
//!   `u64` (64 lanes) or the SIMD-friendly [`batch::W256`] (256 lanes,
//!   the [`batch::DefaultWord`]) — and is the substrate of the
//!   workspace's batched throughput engines.
//!
//! # Example
//!
//! ```
//! use bitnum::{UBig, pg};
//!
//! let a = UBig::from_u128(0x0f0f, 64);
//! let b = UBig::from_u128(0x00ff, 64);
//! let (sum, carry_out) = a.overflowing_add(&b);
//! assert_eq!(sum.to_u128(), Some(0x0f0f + 0x00ff));
//! assert!(!carry_out);
//!
//! // Propagate/generate planes of the same addition.
//! let planes = pg::PgPlanes::of(&a, &b);
//! assert_eq!(planes.p.width(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
pub mod batch;
mod error;
pub mod pg;
pub mod rng;
mod ubig;
mod word;

pub use error::ParseUBigError;
pub use ubig::UBig;

/// Maximum bit width supported by [`UBig`].
pub const MAX_WIDTH: usize = 4096;

use std::cmp::Ordering;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use crate::error::ParseUBigError;
use crate::rng::RandomBits;
use crate::MAX_WIDTH;

/// An unsigned integer with a fixed bit width, stored on `u64` limbs.
///
/// `UBig` models a hardware bus: the width is part of the value, arithmetic
/// wraps at `2^width`, and carry-outs are reported explicitly. Unused high
/// bits of the top limb are always zero (a crate invariant maintained by
/// every operation).
///
/// Two's-complement interpretation helpers ([`UBig::from_i128`],
/// [`UBig::msb`], [`UBig::to_i128`]) are provided because the paper's
/// "2's complement Gaussian" workloads reuse the unsigned datapath.
///
/// # Example
///
/// ```
/// use bitnum::UBig;
///
/// let a = UBig::from_u128(250, 8);
/// let b = UBig::from_u128(10, 8);
/// let (sum, cout) = a.overflowing_add(&b);
/// assert_eq!(sum.to_u128(), Some(4)); // wraps at 2^8
/// assert!(cout);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct UBig {
    width: usize,
    limbs: Vec<u64>,
}

pub(crate) fn limbs_for(width: usize) -> usize {
    width.div_ceil(64)
}

impl UBig {
    /// Creates the zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn zero(width: usize) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "unsupported width {width}"
        );
        Self {
            width,
            limbs: vec![0; limbs_for(width)],
        }
    }

    /// Creates the all-ones value (`2^width - 1`) of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn ones(width: usize) -> Self {
        let mut v = Self::zero(width);
        for l in &mut v.limbs {
            *l = u64::MAX;
        }
        v.mask_top();
        v
    }

    /// Creates a value from a `u128`, truncating to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`].
    pub fn from_u128(value: u128, width: usize) -> Self {
        let mut v = Self::zero(width);
        v.limbs[0] = value as u64;
        if v.limbs.len() > 1 {
            v.limbs[1] = (value >> 64) as u64;
        }
        v.mask_top();
        v
    }

    /// Creates a value from the two's-complement representation of `value`
    /// truncated to `width` bits (sign-extended into the full width first).
    ///
    /// ```
    /// use bitnum::UBig;
    /// let m1 = UBig::from_i128(-1, 32);
    /// assert_eq!(m1, UBig::ones(32));
    /// ```
    pub fn from_i128(value: i128, width: usize) -> Self {
        let mut v = Self::zero(width);
        let fill = if value < 0 { u64::MAX } else { 0 };
        for l in &mut v.limbs {
            *l = fill;
        }
        v.limbs[0] = value as u64;
        if v.limbs.len() > 1 {
            v.limbs[1] = (value >> 64) as u64;
        }
        v.mask_top();
        v
    }

    /// Creates a value from little-endian limbs, truncating to `width` bits.
    ///
    /// Missing limbs are treated as zero; excess limbs are ignored.
    pub fn from_limbs(limbs: &[u64], width: usize) -> Self {
        let mut v = Self::zero(width);
        let n = v.limbs.len().min(limbs.len());
        v.limbs[..n].copy_from_slice(&limbs[..n]);
        v.mask_top();
        v
    }

    /// Parses a (case-insensitive) hexadecimal string, with optional `0x`
    /// prefix and `_` separators.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUBigError`] if the string is empty, contains an invalid
    /// digit, or the value does not fit in `width` bits.
    pub fn from_hex(s: &str, width: usize) -> Result<Self, ParseUBigError> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        let mut v = Self::zero(width);
        let mut digits = 0usize;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c
                .to_digit(16)
                .ok_or_else(|| ParseUBigError::invalid_digit(c))? as u64;
            // Shifting left by 4 must not lose set bits, and the new digit
            // must fit under the width mask.
            if !v.extract_top_nibble_is_zero() {
                return Err(ParseUBigError::overflow());
            }
            v.shl_small_unmasked(4);
            v.limbs[0] |= d;
            let mut masked = v.clone();
            masked.mask_top();
            if masked != v {
                return Err(ParseUBigError::overflow());
            }
            digits += 1;
        }
        if digits == 0 {
            return Err(ParseUBigError::empty());
        }
        Ok(v)
    }

    /// Generates a uniformly random value of the given width.
    pub fn random<R: RandomBits + ?Sized>(width: usize, rng: &mut R) -> Self {
        let mut v = Self::zero(width);
        for l in &mut v.limbs {
            *l = rng.next_u64();
        }
        v.mask_top();
        v
    }

    /// The bit width of this value.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The little-endian limbs backing this value.
    ///
    /// Bits at positions `>= width` in the top limb are guaranteed zero.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Reads bit `i` (little-endian; bit 0 is the least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let mask = 1u64 << (i % 64);
        if value {
            self.limbs[i / 64] |= mask;
        } else {
            self.limbs[i / 64] &= !mask;
        }
    }

    /// The most significant bit — the sign bit under a two's-complement
    /// interpretation.
    pub fn msb(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Position of the highest set bit, or `None` if zero.
    pub fn highest_set_bit(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return Some(i * 64 + 63 - l.leading_zeros() as usize);
            }
        }
        None
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.iter().skip(2).any(|&l| l != 0) {
            return None;
        }
        let lo = self.limbs[0] as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        Some(lo | (hi << 64))
    }

    /// Converts to `i128` under a two's-complement interpretation, if the
    /// value fits (`width <= 128` required for negative values to round-trip).
    pub fn to_i128(&self) -> Option<i128> {
        if self.width > 128 {
            // Positive values that fit still convert.
            if self.msb() {
                return None;
            }
            return self.to_u128().and_then(|v| i128::try_from(v).ok());
        }
        let raw = self.to_u128()?;
        if self.msb() {
            // Sign-extend from `width` to 128 bits.
            let ext = if self.width == 128 {
                0
            } else {
                u128::MAX << self.width
            };
            Some((raw | ext) as i128)
        } else {
            Some(raw as i128)
        }
    }

    /// Addition with carry-in, returning `(sum, carry_out)`.
    ///
    /// This is the exact reference adder against which every speculative
    /// design in the workspace is checked.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add_with_carry(&self, rhs: &Self, carry_in: bool) -> (Self, bool) {
        self.check_width(rhs);
        let mut out = Self::zero(self.width);
        let mut carry = carry_in as u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 | c2) as u64;
        }
        // The carry out of the bus is the carry out of bit `width-1`, which
        // for a partially filled top limb lives inside the top limb.
        let top_bits = self.width % 64;
        let carry_out = if top_bits == 0 {
            carry == 1
        } else {
            let c = (out.limbs[self.limbs.len() - 1] >> top_bits) & 1 == 1;
            out.mask_top();
            c
        };
        (out, carry_out)
    }

    /// Wrapping addition (`(a + b) mod 2^width`) with explicit carry-out.
    pub fn overflowing_add(&self, rhs: &Self) -> (Self, bool) {
        self.add_with_carry(rhs, false)
    }

    /// Wrapping addition, discarding the carry-out.
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction (`(a - b) mod 2^width`), returning
    /// `(difference, borrow)`.
    pub fn overflowing_sub(&self, rhs: &Self) -> (Self, bool) {
        // a - b = a + !b + 1; borrow = !carry_out.
        let (diff, carry) = self.add_with_carry(&rhs.not_bits(), true);
        (diff, !carry)
    }

    /// Wrapping subtraction, discarding the borrow.
    pub fn wrapping_sub(&self, rhs: &Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Two's-complement negation (`(2^width - a) mod 2^width`).
    pub fn negate(&self) -> Self {
        Self::zero(self.width).wrapping_sub(self)
    }

    /// Bitwise NOT within the width.
    pub fn not_bits(&self) -> Self {
        let mut out = self.clone();
        for l in &mut out.limbs {
            *l = !*l;
        }
        out.mask_top();
        out
    }

    /// Logical shift left by `k` bits (bits shifted past `width` are lost).
    pub fn shl(&self, k: usize) -> Self {
        if k >= self.width {
            return Self::zero(self.width);
        }
        let mut out = self.clone();
        let limb_shift = k / 64;
        let bit_shift = k % 64;
        if limb_shift > 0 {
            for i in (0..out.limbs.len()).rev() {
                out.limbs[i] = if i >= limb_shift {
                    out.limbs[i - limb_shift]
                } else {
                    0
                };
            }
        }
        if bit_shift > 0 {
            let mut carry = 0u64;
            for l in &mut out.limbs {
                let new_carry = *l >> (64 - bit_shift);
                *l = (*l << bit_shift) | carry;
                carry = new_carry;
            }
        }
        out.mask_top();
        out
    }

    /// Logical shift right by `k` bits.
    pub fn shr(&self, k: usize) -> Self {
        if k >= self.width {
            return Self::zero(self.width);
        }
        let mut out = self.clone();
        let limb_shift = k / 64;
        let bit_shift = k % 64;
        if limb_shift > 0 {
            let n = out.limbs.len();
            for i in 0..n {
                out.limbs[i] = if i + limb_shift < n {
                    out.limbs[i + limb_shift]
                } else {
                    0
                };
            }
        }
        if bit_shift > 0 {
            let mut carry = 0u64;
            for l in out.limbs.iter_mut().rev() {
                let new_carry = *l << (64 - bit_shift);
                *l = (*l >> bit_shift) | carry;
                carry = new_carry;
            }
        }
        out
    }

    /// Reinterprets the value at a new width: truncates or zero-extends.
    pub fn resize(&self, width: usize) -> Self {
        let mut out = Self::zero(width);
        let n = out.limbs.len().min(self.limbs.len());
        out.limbs[..n].copy_from_slice(&self.limbs[..n]);
        out.mask_top();
        out
    }

    /// Reinterprets the value at a new width with two's-complement sign
    /// extension when widening.
    pub fn resize_signed(&self, width: usize) -> Self {
        if width <= self.width || !self.msb() {
            return self.resize(width);
        }
        let mut out = Self::ones(width);
        // Clear the low `self.width` bits then OR the value in.
        for i in 0..self.limbs.len() {
            out.limbs[i] = self.limbs[i];
        }
        let top_bits = self.width % 64;
        if top_bits != 0 {
            out.limbs[self.limbs.len() - 1] |= u64::MAX << top_bits;
        }
        out.mask_top();
        out
    }

    /// Extracts bits `[lo, lo+len)` as a new `len`-bit value.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the width or `len == 0`.
    pub fn extract(&self, lo: usize, len: usize) -> Self {
        assert!(
            len >= 1 && lo + len <= self.width,
            "extract range out of bounds"
        );
        self.shr(lo).resize(len)
    }

    /// ORs the low `len` bits of `value` into bit positions
    /// `[lo, lo + len)`. The fast inverse of
    /// [`pg::extract_window_u64`](crate::pg::extract_window_u64), used to
    /// assemble per-window results into a full-width value.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64` or the range exceeds the width.
    pub fn deposit_bits(&mut self, lo: usize, len: usize, value: u64) {
        assert!(len <= 64, "deposit window wider than 64 bits");
        assert!(lo + len <= self.width, "deposit range out of bounds");
        let value = if len == 64 {
            value
        } else {
            value & ((1u64 << len) - 1)
        };
        let limb = lo / 64;
        let off = lo % 64;
        self.limbs[limb] |= value << off;
        if off != 0 && off + len > 64 {
            self.limbs[limb + 1] |= value >> (64 - off);
        }
        self.mask_top();
    }

    /// Approximates the value as an `f64` (round-toward-zero on the top 53
    /// bits; `+inf` if the exponent overflows `f64`).
    pub fn to_f64(&self) -> f64 {
        let Some(top) = self.highest_set_bit() else {
            return 0.0;
        };
        if top < 64 {
            return self.limbs[0] as f64;
        }
        let take = 53.min(top + 1);
        let mantissa = crate::pg::extract_window_u64(self, top + 1 - take, take);
        mantissa as f64 * 2f64.powi((top + 1 - take) as i32)
    }

    fn check_width(&self, rhs: &Self) {
        assert_eq!(
            self.width, rhs.width,
            "width mismatch: {} vs {}",
            self.width, rhs.width
        );
    }

    pub(crate) fn mask_top(&mut self) {
        let top_bits = self.width % 64;
        if top_bits != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << top_bits) - 1;
        }
    }

    /// Shifts left by `k < 64` bits without masking the top limb, so the
    /// caller can detect overflow. Used by the hex parser.
    fn shl_small_unmasked(&mut self, k: usize) {
        debug_assert!(k > 0 && k < 64);
        let mut carry = 0u64;
        for l in &mut self.limbs {
            let new_carry = *l >> (64 - k);
            *l = (*l << k) | carry;
            carry = new_carry;
        }
    }

    /// True if the top 4 bits of the top limb are zero (so a 4-bit shift is
    /// lossless at limb granularity).
    fn extract_top_nibble_is_zero(&self) -> bool {
        self.limbs[self.limbs.len() - 1] >> 60 == 0
    }

    #[allow(dead_code)]
    pub(crate) fn limbs_mut(&mut self) -> &mut [u64] {
        &mut self.limbs
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    /// Unsigned magnitude comparison.
    ///
    /// Values of different widths compare by magnitude (the shorter value is
    /// zero-extended conceptually).
    fn cmp(&self, other: &Self) -> Ordering {
        let n = self.limbs.len().max(other.limbs.len());
        for i in (0..n).rev() {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig<{}>(0x{:x})", self.width, self)
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{self:x}")
    }
}

impl fmt::LowerHex for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if started {
                write!(f, "{l:016x}")?;
            } else if l != 0 || i == 0 {
                write!(f, "{l:x}")?;
                started = true;
            }
        }
        Ok(())
    }
}

impl fmt::Binary for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $assign:tt) => {
        impl $trait for &UBig {
            type Output = UBig;
            fn $method(self, rhs: &UBig) -> UBig {
                assert_eq!(self.width, rhs.width, "width mismatch in bit operation");
                let mut out = self.clone();
                for (o, r) in out.limbs.iter_mut().zip(&rhs.limbs) {
                    *o $assign *r;
                }
                out
            }
        }
        impl $trait for UBig {
            type Output = UBig;
            fn $method(self, rhs: UBig) -> UBig {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_bitop!(BitAnd, bitand, &=);
impl_bitop!(BitOr, bitor, |=);
impl_bitop!(BitXor, bitxor, ^=);

impl Not for &UBig {
    type Output = UBig;
    fn not(self) -> UBig {
        self.not_bits()
    }
}

impl Not for UBig {
    type Output = UBig;
    fn not(self) -> UBig {
        self.not_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn zero_and_ones() {
        let z = UBig::zero(100);
        assert!(z.is_zero());
        assert_eq!(z.width(), 100);
        let o = UBig::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(o.highest_set_bit(), Some(99));
    }

    #[test]
    fn from_u128_truncates() {
        let v = UBig::from_u128(0x1ff, 8);
        assert_eq!(v.to_u128(), Some(0xff));
    }

    #[test]
    fn from_i128_sign_extends() {
        let v = UBig::from_i128(-2, 200);
        assert_eq!(v.count_ones(), 199);
        assert!(!v.bit(0));
        assert_eq!(v.to_i128(), None); // width > 128 and negative
        let w = UBig::from_i128(-2, 128);
        assert_eq!(w.to_i128(), Some(-2));
    }

    #[test]
    fn add_with_carry_bit64_boundary() {
        let a = UBig::ones(64);
        let b = UBig::from_u128(1, 64);
        let (s, c) = a.overflowing_add(&b);
        assert!(s.is_zero());
        assert!(c);
    }

    #[test]
    fn add_with_carry_partial_limb() {
        let a = UBig::ones(65);
        let b = UBig::from_u128(1, 65);
        let (s, c) = a.overflowing_add(&b);
        assert!(s.is_zero());
        assert!(c);
        let (s2, c2) = a.add_with_carry(&UBig::zero(65), true);
        assert!(s2.is_zero());
        assert!(c2);
    }

    #[test]
    fn sub_and_negate() {
        let a = UBig::from_u128(5, 32);
        let b = UBig::from_u128(7, 32);
        let (d, borrow) = a.overflowing_sub(&b);
        assert!(borrow);
        assert_eq!(d.to_i128(), Some(-2));
        assert_eq!(b.negate().to_i128(), Some(-7));
    }

    #[test]
    fn shifts_roundtrip() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for width in [1usize, 31, 64, 65, 127, 128, 130, 512] {
            let v = UBig::random(width, &mut rng);
            for k in [0usize, 1, 63, 64, 65] {
                if k >= width {
                    assert!(v.shl(k).is_zero());
                    assert!(v.shr(k).is_zero());
                    continue;
                }
                let up_down = v.shl(k).shr(k);
                let masked = {
                    // shl then shr keeps low width-k bits of v.
                    let keep = width - k;
                    v.extract(0, keep).resize(width)
                };
                assert_eq!(up_down, masked, "width={width} k={k}");
            }
        }
    }

    #[test]
    fn extract_and_resize() {
        let v = UBig::from_u128(0xabcd_ef01, 64);
        assert_eq!(v.extract(8, 16).to_u128(), Some(0xcdef));
        assert_eq!(v.resize(16).to_u128(), Some(0xef01));
        assert_eq!(v.resize(128).to_u128(), Some(0xabcd_ef01));
    }

    #[test]
    fn resize_signed_extends() {
        let v = UBig::from_i128(-100, 40);
        let w = v.resize_signed(160);
        // Interpreting back down should be the same number.
        assert_eq!(w.resize(40), v);
        assert!(w.msb());
        // Positive values extend with zeros.
        let p = UBig::from_u128(100, 40).resize_signed(160);
        assert_eq!(p.to_u128(), Some(100));
    }

    #[test]
    fn hex_roundtrip() {
        let v = UBig::from_hex("0xDEAD_beef", 64).unwrap();
        assert_eq!(v.to_u128(), Some(0xdead_beef));
        assert_eq!(format!("{v:x}"), "deadbeef");
        assert!(UBig::from_hex("", 8).is_err());
        assert!(UBig::from_hex("xyz", 8).is_err());
        assert!(UBig::from_hex("100", 8).is_err()); // 0x100 needs 9 bits
        assert!(UBig::from_hex("ff", 8).is_ok());
    }

    #[test]
    fn comparisons() {
        let a = UBig::from_u128(5, 64);
        let b = UBig::from_u128(6, 256);
        assert!(a < b);
        assert_eq!(a.cmp(&UBig::from_u128(5, 128)), Ordering::Equal);
    }

    #[test]
    fn binary_format() {
        let v = UBig::from_u128(0b1010, 6);
        assert_eq!(format!("{v:b}"), "001010");
    }

    #[test]
    fn bitops() {
        let a = UBig::from_u128(0b1100, 8);
        let b = UBig::from_u128(0b1010, 8);
        assert_eq!((&a & &b).to_u128(), Some(0b1000));
        assert_eq!((&a | &b).to_u128(), Some(0b1110));
        assert_eq!((&a ^ &b).to_u128(), Some(0b0110));
        assert_eq!((!&a).to_u128(), Some(0b1111_0011));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = UBig::zero(8).wrapping_add(&UBig::zero(9));
    }

    #[test]
    fn deposit_roundtrips_extract() {
        let mut rng = Xoshiro256::seed_from_u64(77);
        let src = UBig::random(200, &mut rng);
        for (lo, len) in [(0usize, 17usize), (60, 33), (63, 64), (128, 64), (190, 10)] {
            let window = crate::pg::extract_window_u64(&src, lo, len);
            let mut dst = UBig::zero(200);
            dst.deposit_bits(lo, len, window);
            assert_eq!(dst.extract(lo, len).limbs()[0], window, "lo={lo} len={len}");
            assert_eq!(dst.count_ones(), dst.extract(lo, len).count_ones());
        }
    }

    #[test]
    fn to_f64_matches_small_and_scales() {
        assert_eq!(UBig::zero(128).to_f64(), 0.0);
        assert_eq!(UBig::from_u128(12345, 64).to_f64(), 12345.0);
        let big = UBig::from_u128(1u128 << 100, 128);
        let f = big.to_f64();
        assert!((f / 2f64.powi(100) - 1.0).abs() < 1e-12);
        // Top-53-bit truncation keeps ~1e-15 relative accuracy.
        let v = UBig::from_u128((1u128 << 90) + 12345, 128);
        assert!((v.to_f64() / ((1u128 << 90) as f64) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_respects_width() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..100 {
            let v = UBig::random(70, &mut rng);
            assert!(v.highest_set_bit().unwrap_or(0) < 70);
        }
    }
}

//! The lane-word abstraction of the bit-sliced batch layer.
//!
//! A [`Word`] is the machine word a [`BitSlab`](crate::batch::BitSlab)
//! stores one bit position in: bit `l` of the word is lane `l`'s bit, so
//! the word width **is** the lane capacity of a slab chunk. Three words
//! are provided:
//!
//! * [`u64`] — the original 64-lane word, one native operation per gate;
//! * [`W256`] — four `u64` limbs operated element-wise, 256 lanes per
//!   word. The limb operations are written as fixed-size array maps so the
//!   compiler vectorizes them into SIMD on stable Rust (no `std::simd`,
//!   no nightly, no unsafe) — one 256-bit gate evaluation per vector
//!   operation where the target has the registers for it;
//! * [`W512`] — the eight-limb scaling probe past the AVX2 register
//!   width; see its docs for why it is measured rather than assumed to
//!   win.
//!
//! The trait is **sealed**: the slab layout, the lane-mask invariant and
//! the kernels' masking contract are verified for exactly these
//! implementations (the `word_equivalence` property suite pins the slabs
//! against each other lane-for-lane), and a foreign implementation could
//! silently break them.
//!
//! [`DefaultWord`] is the workspace-wide default slab word — [`W256`]
//! unless the build sets `--cfg vlcsa_word64` (the CI matrix runs the
//! whole test suite both ways). Everything generic over `W: Word`
//! defaults to it, so callers that do not name a word get the wide slabs
//! with no call-site changes.

use std::ops::{BitAnd, BitOr, BitXor, Not};

mod sealed {
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl Sealed for super::W256 {}
    impl Sealed for super::W512 {}
}

/// A bit-sliced lane word: `LANES` independent lanes, one per bit, with
/// the bitwise operations the batch kernels are made of and per-`u64`-limb
/// access for transpose/extract.
///
/// Implementations guarantee that the bitwise operators act independently
/// per bit (so a masked word stays masked under `&`, `|`, `^` with masked
/// operands) and that `limb(i)` exposes lanes `64*i .. 64*i + 64`.
///
/// This trait is sealed; the only implementations are [`u64`] and
/// [`W256`].
pub trait Word:
    sealed::Sealed
    + Copy
    + Eq
    + std::hash::Hash
    + std::fmt::Debug
    + Send
    + Sync
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + 'static
{
    /// Number of lanes (bits) the word holds.
    const LANES: usize;

    /// Number of `u64` limbs (`LANES / 64`).
    const LIMBS: usize;

    /// The all-zero word.
    const ZERO: Self;

    /// The all-ones word.
    const ONES: Self;

    /// The mask with the low `lanes` bits set — the slab lane-mask
    /// invariant in word form ([`Word::ONES`] at `lanes == LANES`).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds [`Word::LANES`].
    fn lane_mask(lanes: usize) -> Self;

    /// Whether lane `lane`'s bit is set.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    fn bit(self, lane: usize) -> bool;

    /// Sets lane `lane`'s bit.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    fn set_bit(&mut self, lane: usize);

    /// Clears lane `lane`'s bit — the lane-overwrite primitive: together
    /// with [`Word::set_bit`] it lets a slab lane be rewritten in place
    /// without requiring the lane to be zero first.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= LANES`.
    fn clear_bit(&mut self, lane: usize) {
        let li = lane / 64;
        let limb = self.limb(li) & !(1u64 << (lane % 64));
        self.set_limb(li, limb);
    }

    /// Number of set bits (lanes at 1) — the stall-count primitive.
    fn count_ones(self) -> u32;

    /// The `u64` limb holding lanes `64*i .. 64*i + 64`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LIMBS`.
    fn limb(self, i: usize) -> u64;

    /// Replaces the `u64` limb holding lanes `64*i .. 64*i + 64`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LIMBS`.
    fn set_limb(&mut self, i: usize, value: u64);

    /// A word with only limb 0 populated (lanes 0..64) — convenient for
    /// tests and small examples.
    fn from_low(limb: u64) -> Self {
        let mut w = Self::ZERO;
        w.set_limb(0, limb);
        w
    }

    /// Whether no lane is set.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

impl Word for u64 {
    const LANES: usize = 64;
    const LIMBS: usize = 1;
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;

    fn lane_mask(lanes: usize) -> Self {
        assert!(
            (1..=Self::LANES).contains(&lanes),
            "lanes must be in 1..={}, got {lanes}",
            Self::LANES
        );
        if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        }
    }

    fn bit(self, lane: usize) -> bool {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        (self >> lane) & 1 == 1
    }

    fn set_bit(&mut self, lane: usize) {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        *self |= 1 << lane;
    }

    fn clear_bit(&mut self, lane: usize) {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        *self &= !(1 << lane);
    }

    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }

    fn limb(self, i: usize) -> u64 {
        assert_eq!(i, 0, "u64 has a single limb");
        self
    }

    fn set_limb(&mut self, i: usize, value: u64) {
        assert_eq!(i, 0, "u64 has a single limb");
        *self = value;
    }
}

/// A 256-lane slab word: four `u64` limbs, limb `i` holding lanes
/// `64*i .. 64*i + 64`, operated element-wise so the compiler can map the
/// limb loops onto SIMD registers.
///
/// ```
/// use bitnum::batch::{Word, W256};
///
/// let mut w = W256::ZERO;
/// w.set_bit(3);
/// w.set_bit(200);
/// assert!(w.bit(200) && !w.bit(199));
/// assert_eq!(w.count_ones(), 2);
/// assert_eq!(w.limb(3), 1 << (200 - 192));
/// assert_eq!(W256::lane_mask(256), W256::ONES);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct W256(pub [u64; 4]);

impl std::fmt::Debug for W256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // High limb first, so the printed value reads as one 256-bit hex
        // number (lane 0 is the least significant digit).
        write!(
            f,
            "W256({:#018x}_{:016x}_{:016x}_{:016x})",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl BitAnd for W256 {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] & rhs.0[i]))
    }
}

impl BitOr for W256 {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] | rhs.0[i]))
    }
}

impl BitXor for W256 {
    type Output = Self;
    fn bitxor(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] ^ rhs.0[i]))
    }
}

impl Not for W256 {
    type Output = Self;
    fn not(self) -> Self {
        Self(std::array::from_fn(|i| !self.0[i]))
    }
}

impl Word for W256 {
    const LANES: usize = 256;
    const LIMBS: usize = 4;
    const ZERO: Self = Self([0; 4]);
    const ONES: Self = Self([u64::MAX; 4]);

    fn lane_mask(lanes: usize) -> Self {
        assert!(
            (1..=Self::LANES).contains(&lanes),
            "lanes must be in 1..={}, got {lanes}",
            Self::LANES
        );
        Self(std::array::from_fn(|i| {
            match lanes.saturating_sub(64 * i) {
                0 => 0,
                rem if rem >= 64 => u64::MAX,
                rem => (1u64 << rem) - 1,
            }
        }))
    }

    fn bit(self, lane: usize) -> bool {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    fn set_bit(&mut self, lane: usize) {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        self.0[lane / 64] |= 1 << (lane % 64);
    }

    fn clear_bit(&mut self, lane: usize) {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        self.0[lane / 64] &= !(1 << (lane % 64));
    }

    fn count_ones(self) -> u32 {
        self.0.iter().map(|limb| limb.count_ones()).sum()
    }

    fn limb(self, i: usize) -> u64 {
        self.0[i]
    }

    fn set_limb(&mut self, i: usize, value: u64) {
        self.0[i] = value;
    }
}

/// A 512-lane slab word: eight `u64` limbs, limb `i` holding lanes
/// `64*i .. 64*i + 64`, with the same element-wise limb maps as [`W256`].
///
/// This is the scaling probe past the AVX2 register width: on hosts whose
/// vector units stop at 256 bits the eight-limb maps compile to two
/// 256-bit operations per gate, so throughput per lane should be flat at
/// best versus [`W256`] while working-set pressure doubles — the
/// measurement behind the word-width row of `BENCH_batch.json` /
/// `EXPERIMENTS.md`. It is a full [`Word`]: every engine, slab and
/// executor is generic over the lane word, so `BitSlab<W512>` works
/// end to end, and the `word_equivalence` suite pins it lane-for-lane
/// against the other two words.
///
/// ```
/// use bitnum::batch::{Word, W512};
///
/// let mut w = W512::ZERO;
/// w.set_bit(3);
/// w.set_bit(500);
/// assert!(w.bit(500) && !w.bit(499));
/// assert_eq!(w.count_ones(), 2);
/// assert_eq!(w.limb(7), 1 << (500 - 448));
/// assert_eq!(W512::lane_mask(512), W512::ONES);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct W512(pub [u64; 8]);

impl std::fmt::Debug for W512 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // High limb first, as one 512-bit hex number, like `W256`.
        write!(f, "W512(0x")?;
        for (i, limb) in self.0.iter().rev().enumerate() {
            if i > 0 {
                write!(f, "_")?;
            }
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl BitAnd for W512 {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] & rhs.0[i]))
    }
}

impl BitOr for W512 {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] | rhs.0[i]))
    }
}

impl BitXor for W512 {
    type Output = Self;
    fn bitxor(self, rhs: Self) -> Self {
        Self(std::array::from_fn(|i| self.0[i] ^ rhs.0[i]))
    }
}

impl Not for W512 {
    type Output = Self;
    fn not(self) -> Self {
        Self(std::array::from_fn(|i| !self.0[i]))
    }
}

impl Word for W512 {
    const LANES: usize = 512;
    const LIMBS: usize = 8;
    const ZERO: Self = Self([0; 8]);
    const ONES: Self = Self([u64::MAX; 8]);

    fn lane_mask(lanes: usize) -> Self {
        assert!(
            (1..=Self::LANES).contains(&lanes),
            "lanes must be in 1..={}, got {lanes}",
            Self::LANES
        );
        Self(std::array::from_fn(|i| {
            match lanes.saturating_sub(64 * i) {
                0 => 0,
                rem if rem >= 64 => u64::MAX,
                rem => (1u64 << rem) - 1,
            }
        }))
    }

    fn bit(self, lane: usize) -> bool {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        (self.0[lane / 64] >> (lane % 64)) & 1 == 1
    }

    fn set_bit(&mut self, lane: usize) {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        self.0[lane / 64] |= 1 << (lane % 64);
    }

    fn clear_bit(&mut self, lane: usize) {
        assert!(lane < Self::LANES, "lane {lane} out of range");
        self.0[lane / 64] &= !(1 << (lane % 64));
    }

    fn count_ones(self) -> u32 {
        self.0.iter().map(|limb| limb.count_ones()).sum()
    }

    fn limb(self, i: usize) -> u64 {
        self.0[i]
    }

    fn set_limb(&mut self, i: usize, value: u64) {
        self.0[i] = value;
    }
}

/// The workspace-wide default slab word: [`W256`], or [`u64`] when the
/// build sets `--cfg vlcsa_word64` (the CI word-width matrix).
///
/// Every batch-layer type and function generic over `W: Word` uses this as
/// its default parameter, so the `Registry`, the executor, the serve
/// front-end and the benches all pick the wide word up with no call-site
/// changes.
#[cfg(not(vlcsa_word64))]
pub type DefaultWord = W256;

/// The workspace-wide default slab word (forced to `u64` by
/// `--cfg vlcsa_word64`).
#[cfg(vlcsa_word64)]
pub type DefaultWord = u64;

#[cfg(test)]
mod tests {
    use super::*;

    fn check_word_laws<W: Word>() {
        assert_eq!(W::LANES, W::LIMBS * 64);
        assert!(W::ZERO.is_zero());
        assert_eq!(W::ONES.count_ones() as usize, W::LANES);
        assert_eq!(W::lane_mask(W::LANES), W::ONES);
        for lanes in [1, 2, 63, 64.min(W::LANES), W::LANES] {
            let mask = W::lane_mask(lanes);
            assert_eq!(mask.count_ones() as usize, lanes, "lanes={lanes}");
            for l in 0..W::LANES {
                assert_eq!(mask.bit(l), l < lanes, "lanes={lanes} bit {l}");
            }
            // Masked stays masked under the kernel's operators.
            assert_eq!(mask & W::ONES, mask);
            assert_eq!(mask | W::ZERO, mask);
            assert_eq!(mask ^ W::ZERO, mask);
            assert_eq!(!mask & mask, W::ZERO);
        }
        // Limb access round-trips and addresses lanes 64*i..64*i+64.
        let mut w = W::ZERO;
        for i in 0..W::LIMBS {
            w.set_limb(i, 1 << i);
        }
        for i in 0..W::LIMBS {
            assert_eq!(w.limb(i), 1 << i);
            assert!(w.bit(64 * i + i));
        }
        assert_eq!(w.count_ones() as usize, W::LIMBS);
        assert_eq!(W::from_low(0b101).count_ones(), 2);
        assert!(W::from_low(0b101).bit(2));
    }

    #[test]
    fn u64_word_laws() {
        check_word_laws::<u64>();
    }

    #[test]
    fn w256_word_laws() {
        check_word_laws::<W256>();
    }

    #[test]
    fn w512_word_laws() {
        check_word_laws::<W512>();
    }

    #[test]
    fn w512_partial_masks_cross_limbs() {
        let m = W512::lane_mask(300);
        assert_eq!(m.limb(3), u64::MAX);
        assert_eq!(m.limb(4), (1u64 << 44) - 1);
        assert_eq!(m.limb(5), 0);
        assert_eq!(W512::lane_mask(512), W512::ONES);
        let s = format!("{:?}", W512::from_low(0x10));
        assert!(s.starts_with("W512(0x0000"), "{s}");
        assert!(s.ends_with("0000000000000010)"), "{s}");
    }

    #[test]
    fn w256_partial_masks_cross_limbs() {
        let m = W256::lane_mask(100);
        assert_eq!(m.limb(0), u64::MAX);
        assert_eq!(m.limb(1), (1u64 << 36) - 1);
        assert_eq!(m.limb(2), 0);
        assert_eq!(m.limb(3), 0);
        assert_eq!(W256::lane_mask(64).limb(0), u64::MAX);
        assert_eq!(W256::lane_mask(64).limb(1), 0);
    }

    #[test]
    #[should_panic(expected = "lanes must be in")]
    fn w256_lane_mask_overflow_panics() {
        let _ = W256::lane_mask(257);
    }

    #[test]
    fn w256_debug_is_hex() {
        let mut w = W256::ZERO;
        w.set_bit(4);
        w.set_bit(255);
        let s = format!("{w:?}");
        assert!(s.starts_with("W256(0x8000"), "{s}");
        assert!(s.ends_with("0000000000000010)"), "{s}");
    }
}

//! Propagate/generate kernels and carry-chain analysis.
//!
//! Binary addition of `a + b` defines, at every bit position `i`, a
//! *propagate* signal `p_i = a_i XOR b_i` and a *generate* signal
//! `g_i = a_i AND b_i` (eqs. 3.1–3.2 of the paper). The carry recurrence is
//! `c_i = g_i OR (p_i AND c_{i-1})`, so a carry travels exactly along
//! maximal runs of consecutive propagate bits — the paper's *carry chains*.
//!
//! This module computes those signal planes word-parallel on [`UBig`]
//! operands, extracts exact per-bit carries, enumerates carry-chain runs
//! (used by the Ch. 6 workload profiling), and provides the windowed
//! prefix kernels used by the speculative adders.
//!
//! # Example
//!
//! ```
//! use bitnum::{UBig, pg};
//!
//! let a = UBig::from_u128(0b0111, 4);
//! let b = UBig::from_u128(0b0001, 4);
//! let planes = pg::PgPlanes::of(&a, &b);
//! // Bit 0 generates, bits 1..=2 propagate.
//! assert_eq!(planes.g.to_u128(), Some(0b0001));
//! assert_eq!(planes.p.to_u128(), Some(0b0110));
//! let (carries, cout) = pg::carries_in(&a, &b, false);
//! assert_eq!(carries.to_u128(), Some(0b1110)); // carry enters bits 1,2,3
//! assert!(!cout);
//! ```

use crate::UBig;

/// The propagate and generate bit planes of one addition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PgPlanes {
    /// Propagate plane: `p_i = a_i XOR b_i`.
    pub p: UBig,
    /// Generate plane: `g_i = a_i AND b_i`.
    pub g: UBig,
}

impl PgPlanes {
    /// Computes the planes for `a + b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ.
    pub fn of(a: &UBig, b: &UBig) -> Self {
        Self { p: a ^ b, g: a & b }
    }

    /// Operand width.
    pub fn width(&self) -> usize {
        self.p.width()
    }

    /// Group propagate over the bit range `[lo, lo+len)`: true iff every bit
    /// in the range propagates.
    pub fn group_p(&self, lo: usize, len: usize) -> bool {
        debug_assert!(lo + len <= self.width());
        let window = extract_window_u128_checked(&self.p, lo, len);
        match window {
            Some(w) => w == mask_u128(len),
            None => (0..len).all(|j| self.p.bit(lo + j)),
        }
    }

    /// Group generate over the bit range `[lo, lo+len)`: true iff the range
    /// produces a carry-out when its carry-in is 0 (eq. 3.5).
    pub fn group_g(&self, lo: usize, len: usize) -> bool {
        debug_assert!(lo + len <= self.width());
        // Scan from the top: G = g_hi | p_hi (g_{hi-1} | p_{hi-1} (...)).
        let mut acc = false;
        for j in 0..len {
            let i = lo + j;
            acc = self.g.bit(i) || (self.p.bit(i) && acc);
        }
        acc
    }

    /// Both group signals for the range, computed with word arithmetic when
    /// the range fits in 128 bits (the common case for adder windows).
    pub fn group_pg(&self, lo: usize, len: usize) -> (bool, bool) {
        if len <= 128 {
            if let (Some(p), Some(g)) = (
                extract_window_u128_checked(&self.p, lo, len),
                extract_window_u128_checked(&self.g, lo, len),
            ) {
                let m = mask_u128(len);
                let group_p = p == m;
                // The group generate equals the carry-out of the isolated
                // window addition with carry-in 0. Reconstruct operands with
                // the same planes: a' = g | p, b' = g.
                let a = g | p;
                let b = g;
                let group_g = if len == 128 {
                    a.checked_add(b).is_none()
                } else {
                    (a + b) >> len & 1 == 1
                };
                return (group_p, group_g);
            }
        }
        (self.group_p(lo, len), self.group_g(lo, len))
    }
}

fn mask_u128(len: usize) -> u128 {
    if len >= 128 {
        u128::MAX
    } else {
        (1u128 << len) - 1
    }
}

/// Extracts bits `[lo, lo+len)` of `x` into a `u64`.
///
/// This is the hot-path window accessor used by the speculative-adder Monte
/// Carlo kernels.
///
/// # Panics
///
/// Panics if `len > 64` or the range exceeds the width.
pub fn extract_window_u64(x: &UBig, lo: usize, len: usize) -> u64 {
    assert!(len <= 64, "window wider than 64 bits");
    assert!(lo + len <= x.width(), "window out of range");
    let limbs = x.limbs();
    let limb = lo / 64;
    let off = lo % 64;
    let mut v = limbs[limb] >> off;
    if off != 0 && limb + 1 < limbs.len() {
        v |= limbs[limb + 1] << (64 - off);
    }
    if len < 64 {
        v &= (1u64 << len) - 1;
    }
    v
}

fn extract_window_u128_checked(x: &UBig, lo: usize, len: usize) -> Option<u128> {
    if len > 128 || lo + len > x.width() {
        return None;
    }
    if len <= 64 {
        return Some(extract_window_u64(x, lo, len) as u128);
    }
    let low = extract_window_u64(x, lo, 64) as u128;
    let high = extract_window_u64(x, lo + 64, len - 64) as u128;
    Some(low | (high << 64))
}

/// Computes, for `a + b + cin`, the carry **into** every bit position
/// (bit `i` of the result is `c_{i-1}`, the carry consumed by position `i`)
/// together with the overall carry-out.
///
/// Identity used: `s_i = p_i XOR c_{i-1}`, so `c_{i-1} = p_i XOR s_i`.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn carries_in(a: &UBig, b: &UBig, cin: bool) -> (UBig, bool) {
    let (sum, cout) = a.add_with_carry(b, cin);
    let p = a ^ b;
    (&p ^ &sum, cout)
}

/// A maximal run of consecutive set bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Least-significant bit position of the run.
    pub lo: usize,
    /// Number of consecutive set bits.
    pub len: usize,
}

/// Enumerates the maximal runs of set bits in `x`, in increasing position.
///
/// Applied to a propagate plane this yields the paper's carry chains
/// ("the number of consecutive propagate signals with value 1 is called the
/// carry chain length", Ch. 3).
pub fn runs(x: &UBig) -> Vec<Run> {
    let mut out = Vec::new();
    let mut current: Option<Run> = None;
    let limbs = x.limbs();
    for (li, &limb) in limbs.iter().enumerate() {
        if limb == 0 {
            if let Some(r) = current.take() {
                out.push(r);
            }
            continue;
        }
        let mut w = limb;
        let base = li * 64;
        let mut pos = 0usize;
        while w != 0 {
            let tz = w.trailing_zeros() as usize;
            if tz > 0 {
                if let Some(r) = current.take() {
                    out.push(r);
                }
                w >>= tz;
                pos += tz;
            }
            let ones = w.trailing_ones() as usize;
            let lo = base + pos;
            match &mut current {
                Some(r) if r.lo + r.len == lo => r.len += ones,
                Some(r) => {
                    out.push(*r);
                    current = Some(Run { lo, len: ones });
                }
                None => current = Some(Run { lo, len: ones }),
            }
            if ones == 64 {
                break;
            }
            w >>= ones;
            pos += ones;
        }
        // If the run did not reach the top bit of this limb, it cannot
        // continue into the next limb.
        if let Some(r) = current {
            if r.lo + r.len != base + 64 {
                out.push(r);
                current = None;
            }
        }
    }
    if let Some(r) = current {
        out.push(r);
    }
    out
}

/// Length of the longest run of set bits in `x` (0 if `x` is zero).
pub fn longest_run(x: &UBig) -> usize {
    runs(x).into_iter().map(|r| r.len).max().unwrap_or(0)
}

/// One *generate-triggered* carry chain: a generate at `start` followed by
/// `len` consecutive propagate bits above it. This is the "chain that a real
/// carry would traverse" view used in the VLSA error analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggeredChain {
    /// Position of the generate bit that launches the carry.
    pub start: usize,
    /// Number of consecutive propagate bits the carry traverses above
    /// `start` (0 if the bit directly above does not propagate).
    pub len: usize,
}

/// Enumerates generate-triggered chains: for every `g_i = 1`, the maximal
/// run of propagate bits starting at `i + 1`.
pub fn triggered_chains(planes: &PgPlanes) -> Vec<TriggeredChain> {
    let width = planes.width();
    let mut out = Vec::new();
    // Precompute, for every position, the length of the propagate run
    // starting at that position, by scanning from the top.
    let mut run_up = vec![0usize; width + 1];
    for i in (0..width).rev() {
        run_up[i] = if planes.p.bit(i) {
            run_up[i + 1] + 1
        } else {
            0
        };
    }
    for i in 0..width {
        if planes.g.bit(i) {
            out.push(TriggeredChain {
                start: i,
                len: run_up[i + 1],
            });
        }
    }
    out
}

/// Truncated Kogge–Stone sweep: given the `(p, g)` planes, performs `levels`
/// doubling steps of the parallel-prefix recurrence
/// `G |= P & (G << 2^j); P &= P << 2^j`.
///
/// After `L` levels, bit `i` of the returned generate plane is the group
/// generate over the window `[max(0, i − 2^L + 1), i]` — i.e. the
/// *speculative carry-out of bit `i` computed from its previous `2^L` bits*,
/// which is exactly the speculation performed by the VLSA baseline, and with
/// `L = ⌈log₂ n⌉` the exact carries of the full addition.
///
/// Returns the swept `(p, g)` planes.
pub fn prefix_sweep(planes: &PgPlanes, levels: usize) -> PgPlanes {
    let mut p = planes.p.clone();
    let mut g = planes.g.clone();
    for j in 0..levels {
        let shift = 1usize << j;
        if shift >= p.width() {
            break;
        }
        let g_shifted = g.shl(shift);
        let p_shifted = p.shl(shift);
        g = &g | &(&p & &g_shifted);
        p = &p & &p_shifted;
    }
    PgPlanes { p, g }
}

/// Windowed prefix planes for an **arbitrary** window length.
///
/// Returns planes where, for `i ≥ len−1`, bit `i` holds the group `(P, G)`
/// over the window `[i − len + 1, i]`. For clipped positions `i < len−1`:
///
/// * `G` is the group generate over `[0, i]` — i.e. the *exact* carry out
///   of bit `i` (shifts fill with zeros, which models the real carry-in 0);
/// * `P` is 0 — there is no full-length window ending there.
///
/// These are precisely the semantics the VLSA baseline needs: `G` is the
/// per-bit speculative carry computed from the previous `len` bits, and `P`
/// flags positions terminating a full-length propagate run (its error
/// detector).
///
/// Built from [`prefix_sweep`]-style doublings plus one residual overlapped
/// combine (`⌈log₂ len⌉ + 1` steps); overlapping windows combine exactly
/// under `(P, G)` semantics.
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn windowed_planes(planes: &PgPlanes, len: usize) -> PgPlanes {
    assert!(len >= 1, "window length must be >= 1");
    let width = planes.width();
    if len >= width {
        let levels = usize::BITS as usize - (width - 1).leading_zeros() as usize;
        return prefix_sweep(planes, levels.max(1));
    }
    // Doubling phase: window w = 2^j for the largest 2^j <= len.
    let mut w = 1usize;
    let mut p = planes.p.clone();
    let mut g = planes.g.clone();
    while w * 2 <= len {
        let g_shifted = g.shl(w);
        let p_shifted = p.shl(w);
        g = &g | &(&p & &g_shifted);
        p = &p & &p_shifted;
        w *= 2;
    }
    // Residual overlapped combine: extend window w to len with shift s.
    let s = len - w;
    if s > 0 {
        let g_shifted = g.shl(s);
        let p_shifted = p.shl(s);
        g = &g | &(&p & &g_shifted);
        p = &p & &p_shifted;
    }
    PgPlanes { p, g }
}

/// Exact carry-out plane of `a + b` with carry-in 0: bit `i` is the carry
/// **out of** bit `i`. Computed with a full prefix sweep.
pub fn carries_out(a: &UBig, b: &UBig) -> UBig {
    let planes = PgPlanes::of(a, b);
    let levels = usize::BITS as usize - (a.width() - 1).leading_zeros() as usize;
    prefix_sweep(&planes, levels).g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{RandomBits, Xoshiro256};

    #[test]
    fn carries_match_schoolbook() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for width in [8usize, 63, 64, 65, 130] {
            for _ in 0..200 {
                let a = UBig::random(width, &mut rng);
                let b = UBig::random(width, &mut rng);
                let cin = rng.next_bool();
                let (carries, cout) = carries_in(&a, &b, cin);
                // Schoolbook reference.
                let mut c = cin;
                for i in 0..width {
                    assert_eq!(carries.bit(i), c, "carry into bit {i}");
                    let ai = a.bit(i);
                    let bi = b.bit(i);
                    c = (ai && bi) || (c && (ai ^ bi));
                }
                assert_eq!(cout, c);
            }
        }
    }

    #[test]
    fn carries_out_matches_carries_in_shifted() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..100 {
            let a = UBig::random(96, &mut rng);
            let b = UBig::random(96, &mut rng);
            let outs = carries_out(&a, &b);
            let (ins, cout) = carries_in(&a, &b, false);
            for i in 0..95 {
                assert_eq!(outs.bit(i), ins.bit(i + 1));
            }
            assert_eq!(outs.bit(95), cout);
        }
    }

    #[test]
    fn group_pg_consistency() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        for _ in 0..200 {
            let a = UBig::random(200, &mut rng);
            let b = UBig::random(200, &mut rng);
            let planes = PgPlanes::of(&a, &b);
            for (lo, len) in [(0usize, 17usize), (5, 64), (100, 100), (64, 65), (190, 10)] {
                let (p, g) = planes.group_pg(lo, len);
                assert_eq!(p, planes.group_p(lo, len), "P lo={lo} len={len}");
                assert_eq!(g, planes.group_g(lo, len), "G lo={lo} len={len}");
                // Group G must equal the carry-out of the isolated window.
                let aw = a.extract(lo, len);
                let bw = b.extract(lo, len);
                let (_, cout) = aw.overflowing_add(&bw);
                assert_eq!(g, cout);
            }
        }
    }

    #[test]
    fn runs_simple() {
        let x = UBig::from_u128(0b0110_1110, 8);
        let r = runs(&x);
        assert_eq!(r, vec![Run { lo: 1, len: 3 }, Run { lo: 5, len: 2 }]);
        assert_eq!(longest_run(&x), 3);
        assert!(runs(&UBig::zero(8)).is_empty());
        assert_eq!(runs(&UBig::ones(130)), vec![Run { lo: 0, len: 130 }]);
    }

    #[test]
    fn runs_cross_limb_boundary() {
        let mut x = UBig::zero(130);
        for i in 60..70 {
            x.set_bit(i, true);
        }
        assert_eq!(runs(&x), vec![Run { lo: 60, len: 10 }]);
    }

    #[test]
    fn runs_match_naive_on_random() {
        let mut rng = Xoshiro256::seed_from_u64(77);
        for _ in 0..200 {
            let x = UBig::random(150, &mut rng);
            let fast = runs(&x);
            // Naive extraction.
            let mut naive = Vec::new();
            let mut i = 0;
            while i < 150 {
                if x.bit(i) {
                    let lo = i;
                    while i < 150 && x.bit(i) {
                        i += 1;
                    }
                    naive.push(Run { lo, len: i - lo });
                } else {
                    i += 1;
                }
            }
            assert_eq!(fast, naive);
        }
    }

    #[test]
    fn triggered_chain_example() {
        // a = 0111, b = 0001: g at bit 0, p at bits 1,2.
        let a = UBig::from_u128(0b0111, 4);
        let b = UBig::from_u128(0b0001, 4);
        let planes = PgPlanes::of(&a, &b);
        let chains = triggered_chains(&planes);
        assert_eq!(chains, vec![TriggeredChain { start: 0, len: 2 }]);
    }

    #[test]
    fn prefix_sweep_full_depth_gives_exact_carries() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for width in [32usize, 100, 256] {
            for _ in 0..50 {
                let a = UBig::random(width, &mut rng);
                let b = UBig::random(width, &mut rng);
                let planes = PgPlanes::of(&a, &b);
                let levels = usize::BITS as usize - (width - 1).leading_zeros() as usize;
                let swept = prefix_sweep(&planes, levels);
                assert_eq!(swept.g, carries_out(&a, &b));
                let (ins, cout) = carries_in(&a, &b, false);
                for i in 1..width {
                    assert_eq!(swept.g.bit(i - 1), ins.bit(i));
                }
                assert_eq!(swept.g.bit(width - 1), cout);
            }
        }
    }

    #[test]
    fn windowed_planes_match_group_pg() {
        let mut rng = Xoshiro256::seed_from_u64(41);
        for len in [1usize, 2, 3, 5, 7, 13, 17, 31, 64, 70] {
            let a = UBig::random(70, &mut rng);
            let b = UBig::random(70, &mut rng);
            let planes = PgPlanes::of(&a, &b);
            let windowed = windowed_planes(&planes, len);
            for i in 0usize..70 {
                let lo = (i + 1).saturating_sub(len);
                let (p, g) = planes.group_pg(lo, i - lo + 1);
                if i >= len - 1 {
                    assert_eq!(windowed.p.bit(i), p, "P len={len} i={i}");
                } else {
                    assert!(!windowed.p.bit(i), "clipped P must be 0: len={len} i={i}");
                }
                // G is exact over the (possibly clipped) window either way.
                assert_eq!(windowed.g.bit(i), g, "G len={len} i={i}");
            }
        }
    }

    #[test]
    fn extract_window_u64_spans_limbs() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let x = UBig::random(256, &mut rng);
        for lo in [0usize, 1, 60, 63, 64, 100, 191] {
            for len in [1usize, 17, 33, 64] {
                if lo + len > 256 {
                    continue;
                }
                let w = extract_window_u64(&x, lo, len);
                for j in 0..len {
                    assert_eq!((w >> j) & 1 == 1, x.bit(lo + j), "lo={lo} len={len} j={j}");
                }
            }
        }
    }
}

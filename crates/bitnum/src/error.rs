use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`UBig`](crate::UBig) from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUBigError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseErrorKind {
    /// The string contained a character that is not a hexadecimal digit.
    InvalidDigit(char),
    /// The string was empty.
    Empty,
    /// The parsed value does not fit in the requested width.
    Overflow,
}

impl ParseUBigError {
    pub(crate) fn invalid_digit(c: char) -> Self {
        Self {
            kind: ParseErrorKind::InvalidDigit(c),
        }
    }

    pub(crate) fn empty() -> Self {
        Self {
            kind: ParseErrorKind::Empty,
        }
    }

    pub(crate) fn overflow() -> Self {
        Self {
            kind: ParseErrorKind::Overflow,
        }
    }
}

impl fmt::Display for ParseUBigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::InvalidDigit(c) => {
                write!(f, "invalid hexadecimal digit {c:?}")
            }
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::Overflow => write!(f, "value does not fit in the requested width"),
        }
    }
}

impl Error for ParseUBigError {}

//! Property-based tests for `bitnum` against `u128` reference semantics.

use bitnum::batch::{ripple_words, BitSlab, WideSlab, Word, W256};
use bitnum::pg::{self, PgPlanes};
use bitnum::rng::Xoshiro256;
use bitnum::UBig;
use proptest::prelude::*;

fn ubig_and_u128(width: usize) -> impl Strategy<Value = (UBig, u128)> {
    prop::num::u128::ANY.prop_map(move |v| {
        let masked = if width == 128 {
            v
        } else {
            v & ((1u128 << width) - 1)
        };
        (UBig::from_u128(v, width), masked)
    })
}

proptest! {
    #[test]
    fn add_matches_u128((a, av) in ubig_and_u128(96), (b, bv) in ubig_and_u128(96), cin: bool) {
        let (sum, cout) = a.add_with_carry(&b, cin);
        let full = av + bv + cin as u128;
        prop_assert_eq!(sum.to_u128().unwrap(), full & ((1u128 << 96) - 1));
        prop_assert_eq!(cout, full >> 96 != 0);
    }

    #[test]
    fn sub_matches_u128((a, av) in ubig_and_u128(80), (b, bv) in ubig_and_u128(80)) {
        let (diff, borrow) = a.overflowing_sub(&b);
        prop_assert_eq!(diff.to_u128().unwrap(), av.wrapping_sub(bv) & ((1u128 << 80) - 1));
        prop_assert_eq!(borrow, av < bv);
    }

    #[test]
    fn add_commutes_and_associates(
        (a, _) in ubig_and_u128(128),
        (b, _) in ubig_and_u128(128),
        (c, _) in ubig_and_u128(128),
    ) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
        prop_assert_eq!(
            a.wrapping_add(&b).wrapping_add(&c),
            a.wrapping_add(&b.wrapping_add(&c))
        );
    }

    #[test]
    fn negate_is_additive_inverse((a, _) in ubig_and_u128(67)) {
        prop_assert!(a.wrapping_add(&a.negate()).is_zero());
    }

    #[test]
    fn shifts_match_u128((a, av) in ubig_and_u128(120), k in 0usize..120) {
        prop_assert_eq!(a.shl(k).to_u128().unwrap(), (av << k) & ((1u128 << 120) - 1));
        prop_assert_eq!(a.shr(k).to_u128().unwrap(), av >> k);
    }

    #[test]
    fn hex_roundtrip((a, _) in ubig_and_u128(128)) {
        let s = format!("{a:x}");
        let back = UBig::from_hex(&s, 128).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn twos_complement_roundtrip(v in prop::num::i64::ANY) {
        let x = UBig::from_i128(v as i128, 64);
        prop_assert_eq!(x.to_i128(), Some(v as i128));
        prop_assert_eq!(x.msb(), v < 0);
    }

    #[test]
    fn carry_chain_runs_cover_all_propagates((a, _) in ubig_and_u128(128), (b, _) in ubig_and_u128(128)) {
        let planes = PgPlanes::of(&a, &b);
        let total: usize = pg::runs(&planes.p).iter().map(|r| r.len).sum();
        prop_assert_eq!(total, planes.p.count_ones());
        // Runs are disjoint, ordered and maximal.
        let rs = pg::runs(&planes.p);
        for w in rs.windows(2) {
            prop_assert!(w[0].lo + w[0].len < w[1].lo);
        }
        for r in &rs {
            for j in 0..r.len {
                prop_assert!(planes.p.bit(r.lo + j));
            }
            if r.lo > 0 {
                prop_assert!(!planes.p.bit(r.lo - 1));
            }
            if r.lo + r.len < 128 {
                prop_assert!(!planes.p.bit(r.lo + r.len));
            }
        }
    }

    #[test]
    fn prefix_sweep_partial_levels_window_property(
        (a, _) in ubig_and_u128(64),
        (b, _) in ubig_and_u128(64),
        levels in 0usize..6,
    ) {
        // After `levels` sweeps, bit i of G is the group generate of the
        // window [max(0, i-2^levels+1), i].
        let planes = PgPlanes::of(&a, &b);
        let swept = pg::prefix_sweep(&planes, levels);
        let span = 1usize << levels;
        for i in 0usize..64 {
            let lo = i.saturating_sub(span - 1);
            let (_, g) = planes.group_pg(lo, i - lo + 1);
            prop_assert_eq!(swept.g.bit(i), g, "bit {}", i);
        }
    }

    #[test]
    fn bitslab_transpose_roundtrip(width in 1usize..300, lanes in 1usize..=64, seed in any::<u64>()) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let values: Vec<UBig> = (0..lanes).map(|_| UBig::random(width, &mut rng)).collect();
        let narrow = BitSlab::<u64>::from_lanes(&values);
        prop_assert_eq!(narrow.to_lanes(), values.clone());
        prop_assert!(narrow.words().iter().all(|&w| w & !narrow.lane_mask() == 0));
        // The wide word stores the identical lane data.
        let wide = BitSlab::<W256>::from_lanes(&values);
        prop_assert_eq!(wide.to_lanes(), values);
        let mask = wide.lane_mask();
        prop_assert!(wide.words().iter().all(|&w| (w & !mask).is_zero()));
    }

    #[test]
    fn bitslab_ripple_matches_scalar(width in 1usize..130, lanes in 1usize..=64, seed in any::<u64>()) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let a = BitSlab::<u64>::random(width, lanes, &mut rng);
        let b = BitSlab::<u64>::random(width, lanes, &mut rng);
        let cin = bitnum::rng::RandomBits::next_u64(&mut rng) & a.lane_mask();
        let mut sum = BitSlab::<u64>::zero(width, lanes);
        let cout = ripple_words(a.words(), b.words(), cin, a.lane_mask(), sum.words_mut());
        for l in 0..lanes {
            let (s, c) = a.lane(l).add_with_carry(&b.lane(l), (cin >> l) & 1 == 1);
            prop_assert_eq!(sum.lane(l), s, "lane {}", l);
            prop_assert_eq!((cout >> l) & 1 == 1, c, "cout lane {}", l);
        }
        // The W256 kernel on the same lanes and the same per-lane carry-in
        // returns bit-identical sums and carry-outs.
        let wa = BitSlab::<W256>::from_lanes(&a.to_lanes());
        let wb = BitSlab::<W256>::from_lanes(&b.to_lanes());
        let wcin = W256::from_low(cin);
        let mut wsum = BitSlab::<W256>::zero(width, lanes);
        let wcout = ripple_words(wa.words(), wb.words(), wcin, wa.lane_mask(), wsum.words_mut());
        prop_assert_eq!(wsum.to_lanes(), sum.to_lanes());
        prop_assert_eq!(wcout, W256::from_low(cout));
    }

    #[test]
    fn wideslab_transpose_roundtrip(width in 1usize..200, lanes in 1usize..300, seed in any::<u64>()) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let values: Vec<UBig> = (0..lanes).map(|_| UBig::random(width, &mut rng)).collect();
        let narrow = WideSlab::<u64>::from_lanes(&values);
        prop_assert_eq!(narrow.to_lanes(), values.clone());
        prop_assert_eq!(narrow.chunks().len(), lanes.div_ceil(64));
        // Every chunk preserves the BitSlab lane-mask invariant.
        for chunk in narrow.chunks() {
            prop_assert!(chunk.words().iter().all(|&w| w & !chunk.lane_mask() == 0));
        }
        // The wide word chunks at 256 lanes but holds the same data.
        let wide = WideSlab::<W256>::from_lanes(&values);
        prop_assert_eq!(wide.chunks().len(), lanes.div_ceil(256));
        prop_assert_eq!(wide.to_lanes(), values);
        for chunk in wide.chunks() {
            let mask = chunk.lane_mask();
            prop_assert!(chunk.words().iter().all(|&w| (w & !mask).is_zero()));
        }
    }

    #[test]
    fn mul_div_roundtrip((a, av) in ubig_and_u128(64), (b, bv) in ubig_and_u128(64)) {
        prop_assume!(bv != 0);
        let p = a.mul_wide(&b);
        prop_assert_eq!(p.to_u128(), Some(av * bv));
        let (q, r) = p.div_rem(&b.resize(128));
        prop_assert_eq!(q.to_u128(), Some(av * bv / bv));
        prop_assert_eq!(r.to_u128(), Some(0));
    }
}

//! Carry-chain statistics (the histograms of Figs. 6.1–6.5).
//!
//! The paper defines the carry chain length as "the number of consecutive
//! propagate signals with value 1" (Ch. 3). For each addition we therefore
//! enumerate the maximal runs of 1s in the propagate plane `p = a ⊕ b` and
//! histogram their lengths; the figures plot the percentage of chains at
//! each length. Long chains — the bimodal mode of two's-complement Gaussian
//! inputs — are what defeat VLCSA 1 and motivate VLCSA 2.

use bitnum::pg::{self, PgPlanes};
use bitnum::UBig;

/// A histogram of carry-chain lengths over many additions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainHistogram {
    width: usize,
    /// counts[len] = number of maximal propagate runs of exactly `len`
    /// bits (index 0 unused).
    counts: Vec<u64>,
    /// counts of the longest chain per addition.
    longest_counts: Vec<u64>,
    additions: u64,
    chains: u64,
}

impl ChainHistogram {
    /// Creates an empty histogram for `width`-bit additions.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width >= 1, "width must be >= 1");
        Self {
            width,
            counts: vec![0; width + 1],
            longest_counts: vec![0; width + 1],
            additions: 0,
            chains: 0,
        }
    }

    /// Operand width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Records one addition's chains.
    ///
    /// # Panics
    ///
    /// Panics if operand widths do not match the histogram width.
    pub fn record(&mut self, a: &UBig, b: &UBig) {
        assert_eq!(a.width(), self.width, "operand width mismatch");
        assert_eq!(b.width(), self.width, "operand width mismatch");
        let planes = PgPlanes::of(a, b);
        self.additions += 1;
        let mut longest = 0usize;
        for run in pg::runs(&planes.p) {
            self.counts[run.len] += 1;
            self.chains += 1;
            longest = longest.max(run.len);
        }
        self.longest_counts[longest] += 1;
    }

    /// Number of additions recorded.
    pub fn additions(&self) -> u64 {
        self.additions
    }

    /// Total number of chains observed.
    pub fn chains(&self) -> u64 {
        self.chains
    }

    /// Fraction of chains with exactly this length (0.0 if no chains yet).
    pub fn share(&self, len: usize) -> f64 {
        if self.chains == 0 || len > self.width {
            return 0.0;
        }
        self.counts[len] as f64 / self.chains as f64
    }

    /// Fraction of chains at least this long.
    pub fn share_at_least(&self, len: usize) -> f64 {
        if self.chains == 0 {
            return 0.0;
        }
        let c: u64 = self.counts[len.min(self.width + 1).max(1)..].iter().sum();
        c as f64 / self.chains as f64
    }

    /// Fraction of additions whose longest chain is ≥ `len` — the quantity
    /// that bounds a speculative adder's error rate.
    pub fn additions_with_chain_at_least(&self, len: usize) -> f64 {
        if self.additions == 0 {
            return 0.0;
        }
        let c: u64 = self.longest_counts[len.min(self.width + 1)..].iter().sum();
        c as f64 / self.additions as f64
    }

    /// Mean chain length.
    pub fn mean_len(&self) -> f64 {
        if self.chains == 0 {
            return 0.0;
        }
        let total: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(len, &c)| len as u64 * c)
            .sum();
        total as f64 / self.chains as f64
    }

    /// `(length, percentage-of-chains)` rows for plotting, lengths 1..=width.
    pub fn rows(&self) -> Vec<(usize, f64)> {
        (1..=self.width)
            .map(|len| (len, 100.0 * self.share(len)))
            .collect()
    }

    /// Merges another histogram of the same width into this one.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn merge(&mut self, other: &ChainHistogram) {
        assert_eq!(self.width, other.width, "histogram width mismatch");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        for (c, o) in self.longest_counts.iter_mut().zip(&other.longest_counts) {
            *c += o;
        }
        self.additions += other.additions;
        self.chains += other.chains;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, OperandSource};

    fn collect(dist: Distribution, width: usize, n: usize) -> ChainHistogram {
        let mut src = OperandSource::new(dist, width, 7);
        let mut h = ChainHistogram::new(width);
        for _ in 0..n {
            let (a, b) = src.next_pair();
            h.record(&a, &b);
        }
        h
    }

    #[test]
    fn explicit_example() {
        let mut h = ChainHistogram::new(8);
        // a ^ b = 0110_1110: runs of 3 and 2.
        let a = UBig::from_u128(0b0110_1110, 8);
        let b = UBig::zero(8);
        h.record(&a, &b);
        assert_eq!(h.chains(), 2);
        assert!((h.share(3) - 0.5).abs() < 1e-12);
        assert!((h.share(2) - 0.5).abs() < 1e-12);
        assert_eq!(h.additions_with_chain_at_least(3), 1.0);
        assert_eq!(h.additions_with_chain_at_least(4), 0.0);
    }

    #[test]
    fn uniform_chains_decay_geometrically() {
        // Fig. 6.1: the share roughly halves per extra bit of length.
        let h = collect(Distribution::UnsignedUniform, 32, 20_000);
        assert!(h.share(1) > h.share(2));
        assert!(h.share(2) > h.share(4));
        assert!(h.share(4) > h.share(8));
        assert!(h.share_at_least(20) < 0.001);
        // Ratio between consecutive small lengths ≈ 2.
        let ratio = h.share(2) / h.share(3);
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn twos_complement_gaussian_is_bimodal() {
        // Fig. 6.5: long chains near the adder width appear with a
        // nontrivial share; unsigned Gaussian (Fig. 6.4) lacks them.
        let sigma = 256.0; // 2^8 for a 32-bit adder
        let tc = collect(Distribution::TwosComplementGaussian { sigma }, 32, 20_000);
        let un = collect(Distribution::UnsignedGaussian { sigma }, 32, 20_000);
        assert!(
            tc.share_at_least(20) > 0.05,
            "2c gaussian long-chain share {}",
            tc.share_at_least(20)
        );
        assert!(
            un.share_at_least(20) < 0.005,
            "unsigned gaussian long-chain share {}",
            un.share_at_least(20)
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = collect(Distribution::UnsignedUniform, 32, 1000);
        let b = collect(Distribution::UnsignedUniform, 32, 1000);
        let chains_before = a.chains();
        a.merge(&b);
        assert_eq!(a.chains(), chains_before + b.chains());
        assert_eq!(a.additions(), 2000);
    }
}

//! Discrete Gaussian sampling via Box–Muller.
//!
//! The paper's "Gaussian inputs" are integers drawn from N(0, σ²) (μ = 0,
//! σ = 2³² in Ch. 7) and interpreted either as magnitudes (unsigned) or in
//! two's complement. `f64` precision limits σ to below ~2⁵⁰, far above
//! anything the experiments need.

use bitnum::rng::RandomBits;
use bitnum::UBig;

/// A Box–Muller Gaussian sampler over a caller-provided bit source.
///
/// Generates pairs internally and caches the spare value.
#[derive(Debug, Clone)]
pub struct Gaussian {
    sigma: f64,
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a sampler for N(0, σ²).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not finite and positive.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        Self { sigma, spare: None }
    }

    /// The standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one standard-normal deviate scaled by σ.
    pub fn sample<R: RandomBits + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z * self.sigma;
        }
        // Box–Muller; u1 in (0, 1] to keep ln finite.
        let u1 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = (1.0 - u1).max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos() * self.sigma
    }

    /// Draws a signed integer deviate (rounded to nearest).
    pub fn sample_i128<R: RandomBits + ?Sized>(&mut self, rng: &mut R) -> i128 {
        self.sample(rng).round() as i128
    }

    /// Draws a two's-complement `width`-bit Gaussian operand.
    pub fn sample_twos_complement<R: RandomBits + ?Sized>(
        &mut self,
        rng: &mut R,
        width: usize,
    ) -> UBig {
        UBig::from_i128(self.sample_i128(rng), width)
    }

    /// Draws an unsigned (absolute-value) `width`-bit Gaussian operand.
    pub fn sample_unsigned<R: RandomBits + ?Sized>(&mut self, rng: &mut R, width: usize) -> UBig {
        UBig::from_i128(self.sample_i128(rng).abs(), width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitnum::rng::Xoshiro256;

    #[test]
    fn moments_are_plausible() {
        let mut g = Gaussian::new(1000.0);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let n = 100_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = g.sample(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 20.0, "mean {mean}");
        assert!((var.sqrt() - 1000.0).abs() < 20.0, "sd {}", var.sqrt());
    }

    #[test]
    fn twos_complement_signs_balanced() {
        let mut g = Gaussian::new((1u64 << 20) as f64);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut neg = 0;
        for _ in 0..10_000 {
            if g.sample_twos_complement(&mut rng, 64).msb() {
                neg += 1;
            }
        }
        assert!((4000..6000).contains(&neg), "negatives {neg}");
    }

    #[test]
    fn unsigned_has_no_sign_bit_for_small_sigma() {
        let mut g = Gaussian::new(1000.0);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..1000 {
            let v = g.sample_unsigned(&mut rng, 64);
            assert!(!v.msb());
            assert!(v.highest_set_bit().unwrap_or(0) < 20);
        }
    }

    #[test]
    fn sigma_two_pow_32_magnitude() {
        // The paper's σ = 2^32: values should be a few times 2^32.
        let mut g = Gaussian::new((1u64 << 32) as f64);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut max_bit = 0;
        for _ in 0..10_000 {
            let v = g.sample_unsigned(&mut rng, 128);
            max_bit = max_bit.max(v.highest_set_bit().unwrap_or(0));
        }
        assert!((32..40).contains(&max_bit), "max bit {max_bit}");
    }
}

//! The operand distributions of the paper's evaluation.

use bitnum::batch::{BitSlab, DefaultWord, WideSlab, Word};
use bitnum::rng::{RandomBits, SplitMix64, Xoshiro256};
use bitnum::UBig;

use crate::gaussian::Gaussian;

/// An operand distribution (Ch. 6–7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Unsigned uniform over `[0, 2^n)` — the paper's "random inputs".
    UnsignedUniform,
    /// Uniform bit patterns interpreted as two's complement (identical bit
    /// statistics to [`Distribution::UnsignedUniform`]; Fig. 6.3 shows the
    /// chain histogram barely changes).
    TwosComplementUniform,
    /// |N(0, σ²)| magnitudes (Fig. 6.4).
    UnsignedGaussian {
        /// Standard deviation.
        sigma: f64,
    },
    /// N(0, σ²) in two's complement — the paper's proxy for practical
    /// inputs (Fig. 6.5, Tables 7.1/7.2/7.5).
    TwosComplementGaussian {
        /// Standard deviation.
        sigma: f64,
    },
}

impl Distribution {
    /// Short identifier for reports.
    pub fn name(&self) -> String {
        match self {
            Distribution::UnsignedUniform => "unsigned-uniform".into(),
            Distribution::TwosComplementUniform => "2c-uniform".into(),
            Distribution::UnsignedGaussian { sigma } => {
                format!("unsigned-gaussian(sigma=2^{:.0})", sigma.log2())
            }
            Distribution::TwosComplementGaussian { sigma } => {
                format!("2c-gaussian(sigma=2^{:.0})", sigma.log2())
            }
        }
    }

    /// The paper's σ = 2³² Gaussian in two's complement.
    pub fn paper_gaussian() -> Self {
        Distribution::TwosComplementGaussian {
            sigma: (1u64 << 32) as f64,
        }
    }
}

/// A deterministic stream of operand pairs from a distribution.
#[derive(Debug, Clone)]
pub struct OperandSource {
    dist: Distribution,
    width: usize,
    seed: u64,
    rng: Xoshiro256,
    gaussian: Option<Gaussian>,
}

impl OperandSource {
    /// Creates a source of `width`-bit operand pairs.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or a Gaussian σ is not positive.
    pub fn new(dist: Distribution, width: usize, seed: u64) -> Self {
        assert!(width >= 1, "width must be >= 1");
        let gaussian = match dist {
            Distribution::UnsignedGaussian { sigma }
            | Distribution::TwosComplementGaussian { sigma } => Some(Gaussian::new(sigma)),
            _ => None,
        };
        Self {
            dist,
            width,
            seed,
            rng: Xoshiro256::seed_from_u64(seed),
            gaussian,
        }
    }

    /// The distribution.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// The operand width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The creation seed (not the current stream position).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives `shards` independent child sources, one per executor shard.
    ///
    /// Child `i` draws the same distribution and width from a seed expanded
    /// out of the **creation** seed by [`SplitMix64`] — so the shard
    /// streams depend only on `(dist, width, seed, i)`, never on how far
    /// this source has advanced or on how many threads consume them:
    /// sharded workloads are exactly reproducible, and re-splitting the
    /// same source always yields the same children.
    ///
    /// ```
    /// use workloads::dist::{Distribution, OperandSource};
    ///
    /// let mut src = OperandSource::new(Distribution::paper_gaussian(), 64, 7);
    /// let _ = src.next_pair(); // advancing the parent changes nothing
    /// let mut again = OperandSource::new(Distribution::paper_gaussian(), 64, 7);
    /// let (a, b) = (src.split(4), again.split(4));
    /// for (mut x, mut y) in a.into_iter().zip(b) {
    ///     assert_eq!(x.next_pair(), y.next_pair());
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn split(&self, shards: usize) -> Vec<OperandSource> {
        assert!(shards >= 1, "need at least one shard");
        let mut sm = SplitMix64::seed_from_u64(self.seed);
        (0..shards)
            .map(|_| Self::new(self.dist, self.width, sm.next_u64()))
            .collect()
    }

    /// Draws the next operand pair.
    pub fn next_pair(&mut self) -> (UBig, UBig) {
        (self.next_operand(), self.next_operand())
    }

    /// Draws the next `lanes` operand pairs as a transposed issue group:
    /// lane `l` of the returned slabs is the `l`-th pair drawn, in the same
    /// order [`OperandSource::next_pair`] would produce them, for every
    /// distribution.
    ///
    /// ```
    /// use workloads::dist::{Distribution, OperandSource};
    ///
    /// let mut scalar = OperandSource::new(Distribution::paper_gaussian(), 64, 42);
    /// let mut batched = OperandSource::new(Distribution::paper_gaussian(), 64, 42);
    /// let (a, b) = batched.next_batch(8);
    /// for l in 0..8 {
    ///     let (sa, sb) = scalar.next_pair();
    ///     assert_eq!(a.lane(l), sa);
    ///     assert_eq!(b.lane(l), sb);
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds the default word's
    /// [`Word::LANES`].
    pub fn next_batch(&mut self, lanes: usize) -> (BitSlab, BitSlab) {
        assert!(
            (1..=DefaultWord::LANES).contains(&lanes),
            "lanes must be in 1..={}, got {lanes}",
            DefaultWord::LANES
        );
        let mut a = Vec::with_capacity(lanes);
        let mut b = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let (x, y) = self.next_pair();
            a.push(x);
            b.push(y);
        }
        (BitSlab::from_lanes(&a), BitSlab::from_lanes(&b))
    }

    /// Draws the next `lanes` operand pairs as a chunked wide issue group —
    /// [`OperandSource::next_batch`] without the per-word lane cap, drawing
    /// in the same `next_pair` order across chunk boundaries.
    ///
    /// ```
    /// use workloads::dist::{Distribution, OperandSource};
    ///
    /// let mut scalar = OperandSource::new(Distribution::paper_gaussian(), 64, 42);
    /// let mut wide = OperandSource::new(Distribution::paper_gaussian(), 64, 42);
    /// let (a, b) = wide.next_wide(100);
    /// assert_eq!(a.chunks().len(), 100usize.div_ceil(a.lanes_per_chunk()));
    /// for l in 0..100 {
    ///     let (sa, sb) = scalar.next_pair();
    ///     assert_eq!(a.lane(l), sa);
    ///     assert_eq!(b.lane(l), sb);
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn next_wide(&mut self, lanes: usize) -> (WideSlab, WideSlab) {
        assert!(lanes >= 1, "lanes must be >= 1, got {lanes}");
        let mut a = Vec::with_capacity(lanes);
        let mut b = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let (x, y) = self.next_pair();
            a.push(x);
            b.push(y);
        }
        (WideSlab::from_lanes(&a), WideSlab::from_lanes(&b))
    }

    /// Draws a single operand.
    pub fn next_operand(&mut self) -> UBig {
        match self.dist {
            Distribution::UnsignedUniform | Distribution::TwosComplementUniform => {
                UBig::random(self.width, &mut self.rng)
            }
            Distribution::UnsignedGaussian { .. } => self
                .gaussian
                .as_mut()
                .expect("gaussian sampler present")
                .sample_unsigned(&mut self.rng, self.width),
            Distribution::TwosComplementGaussian { .. } => self
                .gaussian
                .as_mut()
                .expect("gaussian sampler present")
                .sample_twos_complement(&mut self.rng, self.width),
        }
    }
}

impl RandomBits for OperandSource {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = OperandSource::new(Distribution::paper_gaussian(), 64, 42);
        let mut b = OperandSource::new(Distribution::paper_gaussian(), 64, 42);
        for _ in 0..100 {
            assert_eq!(a.next_pair(), b.next_pair());
        }
        let mut c = OperandSource::new(Distribution::paper_gaussian(), 64, 43);
        assert_ne!(a.next_pair(), c.next_pair());
    }

    #[test]
    fn gaussian_twos_complement_mixes_signs() {
        let mut src = OperandSource::new(Distribution::paper_gaussian(), 128, 1);
        let (mut pos, mut neg) = (0, 0);
        for _ in 0..1000 {
            if src.next_operand().msb() {
                neg += 1;
            } else {
                pos += 1;
            }
        }
        assert!(pos > 300 && neg > 300, "pos={pos} neg={neg}");
    }

    #[test]
    fn next_batch_is_transposed_next_pairs() {
        for dist in [
            Distribution::UnsignedUniform,
            Distribution::TwosComplementUniform,
            Distribution::UnsignedGaussian {
                sigma: (1u64 << 20) as f64,
            },
            Distribution::paper_gaussian(),
        ] {
            let mut scalar = OperandSource::new(dist, 96, 19);
            let mut batched = OperandSource::new(dist, 96, 19);
            let (a, b) = batched.next_batch(17);
            assert_eq!(a.lanes(), 17);
            assert_eq!(a.width(), 96);
            for l in 0..17 {
                let (sa, sb) = scalar.next_pair();
                assert_eq!(a.lane(l), sa, "{dist:?} lane {l}");
                assert_eq!(b.lane(l), sb, "{dist:?} lane {l}");
            }
            // The streams stay in lock-step afterwards.
            assert_eq!(scalar.next_pair(), batched.next_pair());
        }
    }

    #[test]
    fn next_wide_is_chunked_next_pairs() {
        let mut scalar = OperandSource::new(Distribution::paper_gaussian(), 96, 19);
        let mut wide = OperandSource::new(Distribution::paper_gaussian(), 96, 19);
        let (a, b) = wide.next_wide(150);
        assert_eq!(a.lanes(), 150);
        assert_eq!(a.chunks().len(), 150usize.div_ceil(DefaultWord::LANES));
        for l in 0..150 {
            let (sa, sb) = scalar.next_pair();
            assert_eq!(a.lane(l), sa, "lane {l}");
            assert_eq!(b.lane(l), sb, "lane {l}");
        }
        // The streams stay in lock-step afterwards.
        assert_eq!(scalar.next_pair(), wide.next_pair());
    }

    #[test]
    fn split_is_reproducible_and_position_independent() {
        let src = OperandSource::new(Distribution::paper_gaussian(), 64, 5);
        let mut advanced = src.clone();
        for _ in 0..10 {
            let _ = advanced.next_pair();
        }
        let (fresh, moved) = (src.split(4), advanced.split(4));
        assert_eq!(fresh.len(), 4);
        for (mut x, mut y) in fresh.into_iter().zip(moved) {
            assert_eq!(x.distribution(), src.distribution());
            assert_eq!(x.width(), 64);
            for _ in 0..50 {
                assert_eq!(x.next_pair(), y.next_pair());
            }
        }
    }

    #[test]
    fn split_shards_draw_distinct_streams() {
        let src = OperandSource::new(Distribution::UnsignedUniform, 64, 1);
        let mut shards = src.split(8);
        let firsts: Vec<_> = shards.iter_mut().map(|s| s.next_pair()).collect();
        for i in 0..firsts.len() {
            for j in i + 1..firsts.len() {
                assert_ne!(firsts[i], firsts[j], "shards {i} and {j} collide");
            }
        }
    }

    #[test]
    fn uniform_fills_width() {
        let mut src = OperandSource::new(Distribution::UnsignedUniform, 96, 5);
        let mut high = false;
        for _ in 0..100 {
            high |= src.next_operand().bit(95);
        }
        assert!(high, "uniform operands should hit the MSB");
    }
}

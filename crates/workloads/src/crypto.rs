//! Cryptographic workloads with addition tracing.
//!
//! The paper motivates VLCSA 2 with carry-chain profiles "extracted from a
//! cryptographic workload" (Fig. 6.2, after Cilardo DATE'09): RSA,
//! Diffie–Hellman, EC ElGamal and ECDSA. Those traces are not distributed,
//! so this module *regenerates* the workload: multiprecision modular
//! arithmetic (interleaved double-and-add modular multiplication, modular
//! exponentiation, secp256k1 Jacobian point arithmetic) built on
//! [`bitnum::UBig`], instrumented so that **every datapath addition and
//! subtraction is recorded** — a subtraction as the `a + !b (+1)` the adder
//! hardware actually executes.
//!
//! Cilardo's profile — like the Kelly & Phillips study the paper also
//! cites — was taken from *software* running on a 32-bit machine, so the
//! traced additions are (a) the 32-bit word-level adds that multiword
//! arithmetic decomposes into, and (b) the control-plane arithmetic around
//! them: loop-counter increments and bound comparisons, which the ALU
//! executes as `i + 1` and `i + !n + 1` — precisely the "small positive
//! plus small negative" two's-complement pattern the paper identifies as
//! the source of MSB-reaching carry chains. We trace both planes at
//! [`TRACE_WIDTH`] bits. Feeding the pairs to
//! [`crate::chains::ChainHistogram`] reproduces the bimodal shape of
//! Fig. 6.2: a geometric short-chain mode plus a heavy mode hugging the
//! word width.

use bitnum::rng::Xoshiro256;
use bitnum::UBig;

use crate::chains::ChainHistogram;

/// A consumer of traced adder operand pairs.
pub trait AddSink {
    /// Records one addition `a + b` presented to the datapath adder.
    fn record_add(&mut self, a: &UBig, b: &UBig);
}

impl AddSink for ChainHistogram {
    fn record_add(&mut self, a: &UBig, b: &UBig) {
        self.record(a, b);
    }
}

/// Collects raw operand pairs (optionally capped).
#[derive(Debug, Clone, Default)]
pub struct PairCollector {
    pairs: Vec<(UBig, UBig)>,
    cap: Option<usize>,
}

impl PairCollector {
    /// A collector keeping at most `cap` pairs (`None` = unbounded).
    pub fn with_cap(cap: Option<usize>) -> Self {
        Self {
            pairs: Vec::new(),
            cap,
        }
    }

    /// The collected pairs.
    pub fn pairs(&self) -> &[(UBig, UBig)] {
        &self.pairs
    }
}

impl AddSink for PairCollector {
    fn record_add(&mut self, a: &UBig, b: &UBig) {
        if self.cap.is_none_or(|c| self.pairs.len() < c) {
            self.pairs.push((a.clone(), b.clone()));
        }
    }
}

/// A sink that discards everything (for timing runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl AddSink for NullSink {
    fn record_add(&mut self, _a: &UBig, _b: &UBig) {}
}

/// The word width at which software additions are traced (the 32-bit ALU
/// of the machines the paper's workload studies profiled).
pub const TRACE_WIDTH: usize = 32;

/// Records the word-level adds of a multiword operation: `a op b` executes
/// as one `TRACE_WIDTH`-bit addition per word.
fn record_words<S: AddSink + ?Sized>(sink: &mut S, a: &UBig, b: &UBig) {
    let words = a.width().div_ceil(TRACE_WIDTH);
    for w in 0..words {
        let lo = w * TRACE_WIDTH;
        let len = TRACE_WIDTH.min(a.width() - lo);
        let aw = a.extract(lo, len).resize(TRACE_WIDTH);
        let bw = b.extract(lo, len).resize(TRACE_WIDTH);
        sink.record_add(&aw, &bw);
    }
}

/// Records the control-plane arithmetic of one software loop step over a
/// multiword value: the counter increment `i + 1`, the bound comparison
/// `i - n` (executed as `i + !n + 1`), and the remaining-length computation
/// `n - i` — all small-positive/small-negative two's-complement additions.
/// The last one subtracts the smaller value from the larger, so its borrow
/// chain runs from a low generate all the way to the MSB: the exact pattern
/// VLCSA 2's second speculative result absorbs (Ch. 6.4).
fn record_loop_step<S: AddSink + ?Sized>(sink: &mut S, i: u64, n: u64) {
    let iv = UBig::from_u128(i as u128, TRACE_WIDTH);
    let nv = UBig::from_u128(n as u128, TRACE_WIDTH);
    let one = UBig::from_u128(1, TRACE_WIDTH);
    sink.record_add(&iv, &one);
    sink.record_add(&iv, &nv.not_bits());
    sink.record_add(&nv, &iv.not_bits());
}

/// Modular arithmetic over a fixed odd modulus with addition tracing.
///
/// All values are kept reduced (`< m`) at the modulus width `n`.
#[derive(Debug)]
pub struct ModContext<'s, S: AddSink> {
    modulus: UBig,
    width: usize,
    sink: &'s mut S,
}

impl<'s, S: AddSink> ModContext<'s, S> {
    /// Creates a context; `modulus` must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn new(modulus: UBig, sink: &'s mut S) -> Self {
        assert!(!modulus.is_zero(), "modulus must be nonzero");
        let width = modulus.width();
        Self {
            modulus,
            width,
            sink,
        }
    }

    /// The modulus width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Traced addition: records the word-level operand pairs, returns the
    /// raw sum and carry.
    fn traced_add(&mut self, a: &UBig, b: &UBig) -> (UBig, bool) {
        record_words(self.sink, a, b);
        a.overflowing_add(b)
    }

    /// Traced subtraction: records the `(a, !b)` word pairs the adder
    /// sees, and returns `(a - b, borrow)`.
    fn traced_sub(&mut self, a: &UBig, b: &UBig) -> (UBig, bool) {
        let nb = b.not_bits();
        record_words(self.sink, a, &nb);
        a.overflowing_sub(b)
    }

    /// `(a + b) mod m` for reduced inputs.
    pub fn add_mod(&mut self, a: &UBig, b: &UBig) -> UBig {
        let (sum, carry) = self.traced_add(a, b);
        if carry || sum >= self.modulus {
            let m = self.modulus.clone();
            self.traced_sub(&sum, &m).0
        } else {
            sum
        }
    }

    /// `(a - b) mod m` for reduced inputs.
    pub fn sub_mod(&mut self, a: &UBig, b: &UBig) -> UBig {
        let (diff, borrow) = self.traced_sub(a, b);
        if borrow {
            let m = self.modulus.clone();
            self.traced_add(&diff, &m).0
        } else {
            diff
        }
    }

    /// `(a * b) mod m` by interleaved double-and-add — the shift/add/
    /// conditional-subtract structure of a hardware modular multiplier,
    /// generating one or two traced additions per operand bit.
    pub fn mul_mod(&mut self, a: &UBig, b: &UBig) -> UBig {
        let mut acc = UBig::zero(self.width);
        let top = match b.highest_set_bit() {
            Some(t) => t,
            None => return acc,
        };
        for i in (0..=top).rev() {
            // Software loop bookkeeping around the datapath operation.
            record_loop_step(self.sink, (top - i) as u64, top as u64 + 1);
            // acc = 2*acc mod m
            let acc2 = acc.clone();
            acc = self.add_mod(&acc, &acc2);
            if b.bit(i) {
                let a2 = a.clone();
                acc = self.add_mod(&acc, &a2);
            }
        }
        acc
    }

    /// `base^exp mod m` by square-and-multiply over [`ModContext::mul_mod`].
    pub fn pow_mod(&mut self, base: &UBig, exp: &UBig) -> UBig {
        let mut result = UBig::from_u128(1, self.width).rem(&self.modulus);
        let mut b = base
            .rem(&self.modulus.resize(base.width()))
            .resize(self.width);
        let top = match exp.highest_set_bit() {
            Some(t) => t,
            None => return result,
        };
        for i in 0..=top {
            if exp.bit(i) {
                let r = result.clone();
                result = self.mul_mod(&r, &b);
            }
            if i != top {
                let bb = b.clone();
                b = self.mul_mod(&bb, &bb);
            }
        }
        result
    }

    /// Modular inverse by Fermat's little theorem (`m` must be prime).
    pub fn inv_mod(&mut self, a: &UBig) -> UBig {
        let two = UBig::from_u128(2, self.width);
        let exp = self.modulus.wrapping_sub(&two);
        self.pow_mod(a, &exp)
    }
}

/// A point on secp256k1 in Jacobian coordinates (`Z = 0` ⇒ infinity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JacobianPoint {
    /// X coordinate.
    pub x: UBig,
    /// Y coordinate.
    pub y: UBig,
    /// Z coordinate.
    pub z: UBig,
}

/// The secp256k1 field prime `2^256 − 2^32 − 977`.
pub fn secp256k1_p() -> UBig {
    UBig::from_hex(
        "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f",
        256,
    )
    .expect("constant parses")
}

/// The secp256k1 group order.
pub fn secp256k1_n() -> UBig {
    UBig::from_hex(
        "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141",
        256,
    )
    .expect("constant parses")
}

/// The secp256k1 base point, in Jacobian coordinates.
pub fn secp256k1_g() -> JacobianPoint {
    JacobianPoint {
        x: UBig::from_hex(
            "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798",
            256,
        )
        .expect("constant parses"),
        y: UBig::from_hex(
            "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8",
            256,
        )
        .expect("constant parses"),
        z: UBig::from_u128(1, 256),
    }
}

impl JacobianPoint {
    /// The point at infinity.
    pub fn infinity() -> Self {
        Self {
            x: UBig::from_u128(1, 256),
            y: UBig::from_u128(1, 256),
            z: UBig::zero(256),
        }
    }

    /// True iff this is the point at infinity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }
}

/// Point doubling on secp256k1 (a = 0), dbl-2009-l formulas.
pub fn ec_double<S: AddSink>(ctx: &mut ModContext<'_, S>, p: &JacobianPoint) -> JacobianPoint {
    if p.is_infinity() || p.y.is_zero() {
        return JacobianPoint::infinity();
    }
    let a = ctx.mul_mod(&p.x, &p.x); // X1^2
    let b = ctx.mul_mod(&p.y, &p.y); // Y1^2
    let c = ctx.mul_mod(&b, &b); // B^2
                                 // D = 2*((X1+B)^2 - A - C)
    let x1b = ctx.add_mod(&p.x, &b);
    let x1b2 = ctx.mul_mod(&x1b, &x1b);
    let t = ctx.sub_mod(&x1b2, &a);
    let t = ctx.sub_mod(&t, &c);
    let d = ctx.add_mod(&t, &t);
    // E = 3*A
    let a2 = ctx.add_mod(&a, &a);
    let e = ctx.add_mod(&a2, &a);
    let f = ctx.mul_mod(&e, &e);
    // X3 = F - 2*D
    let d2 = ctx.add_mod(&d, &d);
    let x3 = ctx.sub_mod(&f, &d2);
    // Y3 = E*(D - X3) - 8*C
    let dx = ctx.sub_mod(&d, &x3);
    let edx = ctx.mul_mod(&e, &dx);
    let c2 = ctx.add_mod(&c, &c);
    let c4 = ctx.add_mod(&c2, &c2);
    let c8 = ctx.add_mod(&c4, &c4);
    let y3 = ctx.sub_mod(&edx, &c8);
    // Z3 = 2*Y1*Z1
    let yz = ctx.mul_mod(&p.y, &p.z);
    let z3 = ctx.add_mod(&yz, &yz);
    JacobianPoint {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// Point addition on secp256k1, add-2007-bl formulas with special cases.
pub fn ec_add<S: AddSink>(
    ctx: &mut ModContext<'_, S>,
    p: &JacobianPoint,
    q: &JacobianPoint,
) -> JacobianPoint {
    if p.is_infinity() {
        return q.clone();
    }
    if q.is_infinity() {
        return p.clone();
    }
    let z1z1 = ctx.mul_mod(&p.z, &p.z);
    let z2z2 = ctx.mul_mod(&q.z, &q.z);
    let u1 = ctx.mul_mod(&p.x, &z2z2);
    let u2 = ctx.mul_mod(&q.x, &z1z1);
    let z2cube = ctx.mul_mod(&q.z, &z2z2);
    let s1 = ctx.mul_mod(&p.y, &z2cube);
    let z1cube = ctx.mul_mod(&p.z, &z1z1);
    let s2 = ctx.mul_mod(&q.y, &z1cube);
    let h = ctx.sub_mod(&u2, &u1);
    let rr = ctx.sub_mod(&s2, &s1);
    if h.is_zero() {
        if rr.is_zero() {
            return ec_double(ctx, p);
        }
        return JacobianPoint::infinity();
    }
    let h2 = ctx.add_mod(&h, &h);
    let i = ctx.mul_mod(&h2, &h2);
    let j = ctx.mul_mod(&h, &i);
    let r2 = ctx.add_mod(&rr, &rr);
    let v = ctx.mul_mod(&u1, &i);
    // X3 = r2^2 - J - 2*V
    let r2sq = ctx.mul_mod(&r2, &r2);
    let t = ctx.sub_mod(&r2sq, &j);
    let v2 = ctx.add_mod(&v, &v);
    let x3 = ctx.sub_mod(&t, &v2);
    // Y3 = r2*(V - X3) - 2*S1*J
    let vx = ctx.sub_mod(&v, &x3);
    let rvx = ctx.mul_mod(&r2, &vx);
    let s1j = ctx.mul_mod(&s1, &j);
    let s1j2 = ctx.add_mod(&s1j, &s1j);
    let y3 = ctx.sub_mod(&rvx, &s1j2);
    // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H
    let z12 = ctx.add_mod(&p.z, &q.z);
    let z12sq = ctx.mul_mod(&z12, &z12);
    let t = ctx.sub_mod(&z12sq, &z1z1);
    let t = ctx.sub_mod(&t, &z2z2);
    let z3 = ctx.mul_mod(&t, &h);
    JacobianPoint {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// Scalar multiplication (double-and-add, MSB first).
pub fn ec_scalar_mul<S: AddSink>(
    ctx: &mut ModContext<'_, S>,
    k: &UBig,
    p: &JacobianPoint,
) -> JacobianPoint {
    let mut acc = JacobianPoint::infinity();
    let top = match k.highest_set_bit() {
        Some(t) => t,
        None => return acc,
    };
    for i in (0..=top).rev() {
        acc = ec_double(ctx, &acc);
        if k.bit(i) {
            acc = ec_add(ctx, &acc, p);
        }
    }
    acc
}

/// Converts a Jacobian point to affine `(x, y)` (requires a prime modulus).
pub fn ec_to_affine<S: AddSink>(
    ctx: &mut ModContext<'_, S>,
    p: &JacobianPoint,
) -> Option<(UBig, UBig)> {
    if p.is_infinity() {
        return None;
    }
    let zinv = ctx.inv_mod(&p.z);
    let zinv2 = ctx.mul_mod(&zinv, &zinv);
    let zinv3 = ctx.mul_mod(&zinv2, &zinv);
    Some((ctx.mul_mod(&p.x, &zinv2), ctx.mul_mod(&p.y, &zinv3)))
}

/// The cryptographic benchmarks of Fig. 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CryptoBench {
    /// RSA-style modular exponentiation with a 512-bit random odd modulus.
    Rsa512,
    /// Diffie–Hellman key agreement: 256-bit modular exponentiation over a
    /// random odd modulus.
    Dh256,
    /// EC ElGamal over secp256k1: ephemeral and shared-secret scalar
    /// multiplications.
    EcElGamalP256,
    /// ECDSA-style signing arithmetic over secp256k1: one base-point
    /// multiplication plus modular inverse and products modulo the order.
    EcdsaP256,
}

impl CryptoBench {
    /// All benchmarks, in Fig. 6.2 order.
    pub const ALL: [CryptoBench; 4] = [
        CryptoBench::Rsa512,
        CryptoBench::Dh256,
        CryptoBench::EcElGamalP256,
        CryptoBench::EcdsaP256,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CryptoBench::Rsa512 => "RSA",
            CryptoBench::Dh256 => "DH",
            CryptoBench::EcElGamalP256 => "ECELGP",
            CryptoBench::EcdsaP256 => "ECDSP",
        }
    }

    /// The width at which the benchmark's additions are traced — the
    /// 32-bit software word size (see the module docs).
    pub fn width(self) -> usize {
        TRACE_WIDTH
    }

    /// The benchmark's field/modulus size in bits.
    pub fn field_bits(self) -> usize {
        match self {
            CryptoBench::Rsa512 => 512,
            CryptoBench::Dh256 => 256,
            CryptoBench::EcElGamalP256 | CryptoBench::EcdsaP256 => 256,
        }
    }

    /// Runs `iterations` operations of the benchmark, recording every
    /// datapath addition into `sink`.
    pub fn run<S: AddSink>(self, iterations: usize, seed: u64, sink: &mut S) {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xc0ffee);
        match self {
            CryptoBench::Rsa512 | CryptoBench::Dh256 => {
                let width = self.field_bits();
                for _ in 0..iterations {
                    let mut m = UBig::random(width, &mut rng);
                    m.set_bit(0, true); // odd
                    m.set_bit(width - 1, true); // full width
                    let base = UBig::random(width, &mut rng);
                    // Short exponents keep runs fast while exercising the
                    // same mul_mod inner loop statistics.
                    let exp = UBig::random(64, &mut rng).resize(width);
                    let mut ctx = ModContext::new(m, sink);
                    let _ = ctx.pow_mod(&base, &exp);
                }
            }
            CryptoBench::EcElGamalP256 => {
                for _ in 0..iterations {
                    let k = UBig::random(128, &mut rng).resize(256);
                    let mut ctx = ModContext::new(secp256k1_p(), sink);
                    let g = secp256k1_g();
                    let shared = ec_scalar_mul(&mut ctx, &k, &g);
                    let _ = ec_to_affine(&mut ctx, &shared);
                }
            }
            CryptoBench::EcdsaP256 => {
                for _ in 0..iterations {
                    let k = UBig::random(128, &mut rng).resize(256);
                    // r = x(kG) mod n ; s = k^-1 (z + r d) mod n
                    let (r, _) = {
                        let mut ctx = ModContext::new(secp256k1_p(), sink);
                        let g = secp256k1_g();
                        let kg = ec_scalar_mul(&mut ctx, &k, &g);
                        ec_to_affine(&mut ctx, &kg).expect("k != 0")
                    };
                    let mut ctx = ModContext::new(secp256k1_n(), sink);
                    let z = UBig::random(256, &mut rng);
                    let d = UBig::random(256, &mut rng);
                    let kinv = ctx.inv_mod(&k);
                    let rd = ctx.mul_mod(&r, &d);
                    let zrd = ctx.add_mod(&z.rem(&secp256k1_n()), &rd);
                    let _s = ctx.mul_mod(&kinv, &zrd);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_mod_matches_reference() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut sink = NullSink;
        for _ in 0..20 {
            let mut m = UBig::random(96, &mut rng);
            m.set_bit(0, true);
            m.set_bit(95, true);
            let a = UBig::random(96, &mut rng).rem(&m);
            let b = UBig::random(96, &mut rng).rem(&m);
            let mut ctx = ModContext::new(m.clone(), &mut sink);
            assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m));
        }
    }

    #[test]
    fn pow_mod_matches_reference() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let mut sink = NullSink;
        for _ in 0..5 {
            let mut m = UBig::random(64, &mut rng);
            m.set_bit(0, true);
            m.set_bit(63, true);
            let base = UBig::random(64, &mut rng);
            let exp = UBig::random(20, &mut rng).resize(64);
            let mut ctx = ModContext::new(m.clone(), &mut sink);
            assert_eq!(ctx.pow_mod(&base, &exp), base.pow_mod(&exp, &m));
        }
    }

    #[test]
    fn ec_group_law_holds() {
        let mut sink = NullSink;
        let mut ctx = ModContext::new(secp256k1_p(), &mut sink);
        let g = secp256k1_g();
        // 2G + G == 3G (computed two ways).
        let g2 = ec_double(&mut ctx, &g);
        let g3a = ec_add(&mut ctx, &g2, &g);
        let g3b = ec_scalar_mul(&mut ctx, &UBig::from_u128(3, 256), &g);
        let a3 = ec_to_affine(&mut ctx, &g3a).unwrap();
        let b3 = ec_to_affine(&mut ctx, &g3b).unwrap();
        assert_eq!(a3, b3);
    }

    #[test]
    fn ec_points_stay_on_curve() {
        let mut sink = NullSink;
        let mut ctx = ModContext::new(secp256k1_p(), &mut sink);
        let g = secp256k1_g();
        for k in [1u128, 2, 5, 77, 123_456] {
            let p = ec_scalar_mul(&mut ctx, &UBig::from_u128(k, 256), &g);
            let (x, y) = ec_to_affine(&mut ctx, &p).unwrap();
            // y^2 = x^3 + 7 (mod p)
            let y2 = ctx.mul_mod(&y, &y);
            let x2 = ctx.mul_mod(&x, &x);
            let x3 = ctx.mul_mod(&x2, &x);
            let seven = UBig::from_u128(7, 256);
            let rhs = ctx.add_mod(&x3, &seven);
            assert_eq!(y2, rhs, "k={k} off curve");
        }
    }

    #[test]
    fn known_answer_2g() {
        // Public test vector for secp256k1 2G.
        let mut sink = NullSink;
        let mut ctx = ModContext::new(secp256k1_p(), &mut sink);
        let g2 = ec_double(&mut ctx, &secp256k1_g());
        let (x, y) = ec_to_affine(&mut ctx, &g2).unwrap();
        assert_eq!(
            x,
            UBig::from_hex(
                "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5",
                256
            )
            .unwrap()
        );
        assert_eq!(
            y,
            UBig::from_hex(
                "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a",
                256
            )
            .unwrap()
        );
    }

    #[test]
    fn benchmarks_emit_bimodal_traces() {
        for bench in CryptoBench::ALL {
            let mut hist = ChainHistogram::new(bench.width());
            bench.run(1, 77, &mut hist);
            assert!(
                hist.additions() > 1000,
                "{}: {} adds",
                bench.name(),
                hist.additions()
            );
            // Fig. 6.2's bimodal shape: dominant geometric short-chain mode
            // plus a heavy mode of chains reaching toward the word width.
            assert!(
                hist.share(1) > hist.share(4),
                "{}: short mode",
                bench.name()
            );
            let long = hist.additions_with_chain_at_least(20);
            assert!(
                long > 0.02,
                "{}: long-chain mode share {long} too small",
                bench.name()
            );
            assert!(
                long < 0.8,
                "{}: long-chain mode share {long} implausibly big",
                bench.name()
            );
        }
    }
}

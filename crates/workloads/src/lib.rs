//! Input workloads for speculative-adder evaluation.
//!
//! Chapter 6 of the paper shows that the carry-chain statistics of an
//! adder's operands decide whether speculation pays off: unsigned uniform
//! inputs have geometrically short chains, while practical inputs — profiled
//! there from a cryptographic benchmark suite — are bimodal, with a heavy
//! mode of chains running all the way to the MSB (small-negative plus
//! small-positive additions in two's complement). This crate provides:
//!
//! * [`dist`] — the four operand distributions the paper evaluates
//!   (unsigned/two's-complement × uniform/Gaussian), deterministic and
//!   seedable;
//! * [`gaussian`] — Box–Muller sampling of discrete Gaussians at any σ;
//! * [`chains`] — carry-chain statistics (the histograms of Figs. 6.1–6.5);
//! * [`crypto`] — RSA/DH modular exponentiation and elliptic-curve
//!   double-and-add built on `bitnum`, instrumented so every datapath
//!   addition/subtraction is recorded (the stand-in for the benchmark
//!   traces of Fig. 6.2; see DESIGN.md §5).
//!
//! # Example
//!
//! ```
//! use workloads::dist::{Distribution, OperandSource};
//! use workloads::chains;
//!
//! let mut src = OperandSource::new(Distribution::TwosComplementGaussian { sigma: 256.0 }, 32, 1);
//! let mut hist = chains::ChainHistogram::new(32);
//! for _ in 0..1000 {
//!     let (a, b) = src.next_pair();
//!     hist.record(&a, &b);
//! }
//! // Two's-complement Gaussian inputs exhibit the paper's long-chain mode.
//! assert!(hist.share_at_least(24) > 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chains;
pub mod crypto;
pub mod dist;
pub mod dsp;
pub mod gaussian;

//! Digital-signal-processing workload: the other "practical application"
//! class the paper's introduction and conclusion call out ("we also plan
//! to apply the ... addition for certain applications such as digital
//! signal processing").
//!
//! A fixed-point FIR filter is simulated over synthetic sensor data (sine +
//! noise) and every accumulator addition is traced through the same
//! [`AddSink`] interface as the crypto workloads.
//! DSP accumulation is signed: coefficient products alternate in sign, so
//! small-negative + small-positive additions — the VLCSA 2 motivation —
//! appear naturally in the trace.

use bitnum::rng::{RandomBits, Xoshiro256};
use bitnum::UBig;

use crate::crypto::AddSink;

/// Fixed-point format: Q(WIDTH-FRAC).FRAC accumulators.
pub const ACC_WIDTH: usize = 32;

/// A symmetric band-pass-ish FIR kernel with alternating signs (Q1.14).
pub fn default_taps() -> Vec<i32> {
    vec![
        -120, 340, -780, 1460, -2390, 3320, -4020, 16384, -4020, 3320, -2390, 1460, -780, 340, -120,
    ]
}

/// Runs `samples` steps of a 16-bit-input FIR filter, tracing every
/// accumulator addition into `sink`. Returns the filtered output (for
/// checking) as `i64` values.
pub fn run_fir<S: AddSink + ?Sized>(
    samples: usize,
    taps: &[i32],
    seed: u64,
    sink: &mut S,
) -> Vec<i64> {
    assert!(!taps.is_empty(), "need at least one tap");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // Synthetic sensor signal: sine + uniform noise, 16-bit signed.
    let signal: Vec<i64> = (0..samples + taps.len())
        .map(|t| {
            let sine = 12_000.0 * (t as f64 * 0.07).sin();
            let noise = (rng.next_f64() - 0.5) * 3_000.0;
            (sine + noise) as i64
        })
        .collect();

    let mut out = Vec::with_capacity(samples);
    for t in 0..samples {
        let mut acc: i64 = 0;
        for (j, &tap) in taps.iter().enumerate() {
            let product = signal[t + j] * tap as i64; // multiplier output
                                                      // The accumulator add is what the speculative adder executes.
            let a = UBig::from_i128(acc as i128, ACC_WIDTH);
            let b = UBig::from_i128(product as i128, ACC_WIDTH);
            sink.record_add(&a, &b);
            acc = acc.wrapping_add(product);
        }
        out.push(acc >> 14); // Q-format renormalization
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chains::ChainHistogram;
    use crate::crypto::NullSink;

    #[test]
    fn filter_output_is_bounded_and_nontrivial() {
        let mut sink = NullSink;
        let out = run_fir(500, &default_taps(), 7, &mut sink);
        assert_eq!(out.len(), 500);
        let max = out.iter().map(|v| v.abs()).max().unwrap();
        assert!(max > 1_000, "filter should pass signal: max {max}");
        assert!(max < 1 << 20, "no overflow at Q1.14: max {max}");
    }

    #[test]
    fn accumulator_trace_shows_sign_mixed_long_chains() {
        let mut hist = ChainHistogram::new(ACC_WIDTH);
        let _ = run_fir(400, &default_taps(), 9, &mut hist);
        // taps.len() adds per sample.
        assert_eq!(hist.additions(), 400 * default_taps().len() as u64);
        // Sign-alternating accumulation: chains beyond typical window
        // sizes occur orders of magnitude more often than on uniform
        // operands (~0.4% of 32-bit uniform adds hold a >= 12-bit chain).
        let ge8 = hist.additions_with_chain_at_least(8);
        let ge12 = hist.additions_with_chain_at_least(12);
        assert!(ge8 > 0.1, "share of adds with >= 8-bit chain: {ge8}");
        assert!(ge12 > 0.01, "share of adds with >= 12-bit chain: {ge12}");
    }

    #[test]
    fn deterministic() {
        let mut s1 = NullSink;
        let mut s2 = NullSink;
        assert_eq!(
            run_fir(100, &default_taps(), 3, &mut s1),
            run_fir(100, &default_taps(), 3, &mut s2)
        );
    }
}

//! A small, dependency-free, offline stand-in for the [`criterion`]
//! benchmarking crate (see `DESIGN.md §7`). It implements the subset of the
//! API used by `crates/bench/benches/micro.rs` — benchmark groups,
//! throughput annotation, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros — on top of a simple
//! warm-up + fixed-sample wall-clock measurement.
//!
//! Reported numbers are mean wall-clock time per iteration (with elements/s
//! when a [`Throughput`] is set). There are no statistical refinements,
//! saved baselines, or HTML reports; swap the `vendor/` path dependency for
//! the real crates.io `criterion` to get those without source changes.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Adopt command-line filters (every free argument is a substring
    /// filter on benchmark ids), mirroring criterion's CLI behavior.
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, None, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn run_one<F>(&self, id: &str, throughput: Option<&Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return;
        }
        // Warm-up: repeat the routine until the warm-up budget is spent.
        let warm_up_until = Instant::now() + self.warm_up_time;
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        while Instant::now() < warm_up_until {
            bencher.iterations = 0;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.iterations == 0 {
                break; // routine never called iter(); nothing to measure
            }
        }
        // Measurement: `sample_size` samples within the time budget.
        let measure_until = Instant::now() + self.measurement_time;
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        for sample in 0..self.sample_size {
            bencher.iterations = 0;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            total_iters += bencher.iterations;
            total_time += bencher.elapsed;
            if sample > 0 && Instant::now() > measure_until {
                break;
            }
        }
        if total_iters == 0 {
            println!("{id:<44} (no iterations)");
            return;
        }
        let ns_per_iter = total_time.as_nanos() as f64 / total_iters as f64;
        let rate = throughput
            .map(|t| t.describe(ns_per_iter))
            .unwrap_or_default();
        println!("{id:<44} {:>12}/iter{rate}", format_ns(ns_per_iter));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with work-per-iteration, so results
    /// include an elements/s (or bytes/s) rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, self.throughput.as_ref(), f);
        self
    }

    /// End the group. (Consumes the group; reporting is immediate, so this
    /// is a no-op beyond symmetry with the real API.)
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the hot routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called in a batch loop. The routine's return value
    /// is black-boxed so the optimizer cannot discard the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Keep batching until the timed region dwarfs the two Instant
        // reads (~tens of ns), so sub-microsecond routines aren't skewed
        // by timer overhead.
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
            if start.elapsed() >= Duration::from_micros(10) {
                break;
            }
        }
        self.elapsed += start.elapsed();
        self.iterations += iters;
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = 8u64;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iterations += iters;
    }
}

/// Hint for batched-input sizing (accepted for API compatibility; the shim
/// uses a fixed batch count).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are small; large batches are fine.
    SmallInput,
    /// Inputs are large; keep batches small.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Throughput {
    fn describe(&self, ns_per_iter: f64) -> String {
        let (count, unit) = match self {
            Throughput::Elements(n) => (*n, "elem"),
            Throughput::Bytes(n) => (*n, "B"),
        };
        if ns_per_iter <= 0.0 {
            return String::new();
        }
        let per_sec = count as f64 * 1_000_000_000.0 / ns_per_iter;
        format!("  ({per_sec:.3e} {unit}/s)")
    }
}

/// Define a benchmark group function, mirroring criterion's macro grammar.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

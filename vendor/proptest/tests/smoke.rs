//! Smoke tests for the shim itself: macro grammar, strategies, rejection,
//! and failure reporting.

use proptest::prelude::*;

fn pair() -> impl Strategy<Value = (u64, u64)> {
    (0u64..100, 1u64..7).prop_map(|(a, b)| (a, a * b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mixed_param_forms((a, ab) in pair(), flip: bool, k in 1usize..9) {
        prop_assert!(ab % a.max(1) == 0 || a == 0);
        prop_assert!((1..9).contains(&k));
        let _ = flip;
    }

    #[test]
    fn assume_rejects_and_replaces(n in 0u32..10) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }

    #[test]
    fn collections_and_arrays(
        v in prop::collection::vec(0u8..5, 1..20),
        arr in prop::array::uniform8(any::<u64>()),
        big in prop::num::u128::ANY,
    ) {
        prop_assert!(!v.is_empty() && v.len() < 20);
        prop_assert!(v.iter().all(|&x| x < 5));
        prop_assert_eq!(arr.len(), 8);
        let _ = big;
    }
}

#[test]
#[should_panic(expected = "generated input")]
fn failure_reports_generated_input() {
    proptest::test_runner::run_cases(ProptestConfig::with_cases(4), (0u32..10,), |(_n,)| {
        Err(proptest::test_runner::TestCaseError::fail("forced"))
    });
}

#[test]
fn generation_is_deterministic() {
    let strat = (0u64..1_000_000,);
    let draw = |_| {
        let mut rng = proptest::test_runner::TestRng::deterministic();
        (0..10)
            .map(|_| strat.generate(&mut rng).0)
            .collect::<Vec<_>>()
    };
    assert_eq!(draw(0), draw(1));
}

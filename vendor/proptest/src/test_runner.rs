//! The case runner: configuration, deterministic RNG, and the driver loop
//! behind the [`proptest!`](crate::proptest) macro.

use crate::strategy::Strategy;

/// Test-runner configuration (`proptest::test_runner::Config` equivalent).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required for a pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!` failures) tolerated before
    /// the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!`; the runner draws another.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejected case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Deterministic RNG handed to strategies (SplitMix64). A fixed seed keeps
/// every run reproducible; there is no failure persistence because there is
/// no randomness to persist.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed generator used by [`run_cases`].
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Drive `test` over `config.cases` generated inputs. Panics (failing the
/// enclosing `#[test]`) on the first case whose result is
/// [`TestCaseError::Fail`]; rejected cases are replaced, up to
/// `config.max_global_rejects`.
pub fn run_cases<S, F>(config: ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    S::Value: core::fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::deterministic();
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let value = strategy.generate(&mut rng);
        // Rendered up front so the failing input survives the move into
        // `test` (no shrinking here, so this is the whole repro story).
        let input = format!("{value:?}");
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!("proptest: too many rejected cases ({rejected}) — last: {reason}");
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "proptest: case #{} failed (after {rejected} rejects):\n{message}\n\
                     generated input: {input}",
                    passed + 1
                );
            }
        }
    }
}

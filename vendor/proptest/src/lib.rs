//! A small, dependency-free, offline stand-in for the [`proptest`] crate.
//!
//! The workspace vendors this shim because the build environment has no
//! network access to crates.io (see `DESIGN.md §7`). It implements exactly
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `pat in strategy` and `name: Type`
//!   parameters and an optional `#![proptest_config(..)]` inner attribute;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   integer-range strategies,
//!   tuple strategies, `any::<T>()`, `prop::num::*::ANY`,
//!   `prop::collection::vec` and `prop::array::uniform8`.
//!
//! Unlike real proptest there is **no shrinking** and no persistence of
//! failing cases: generation is deterministic (a fixed-seed SplitMix64
//! stream), so a failure reproduces on every run. Swapping the `vendor/`
//! path dependency for the real crates.io `proptest` requires no source
//! changes in the tests.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

pub mod test_runner;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A generator of test values. This shim's strategies generate directly
    /// from an RNG; there is no value tree and no shrinking.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f` (mirrors `proptest`'s
        /// `Strategy::prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*}
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*}
    }
    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`]; also the type of the
    /// `prop::num::*::ANY` constants.
    pub struct Any<A>(pub(crate) PhantomData<A>);

    /// The canonical strategy for `A` (full value range).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    wide as $t
                }
            }
        )*}
    }
    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::num`, `prop::collection`,
    //! `prop::array`), mirroring the paths the real prelude exposes.

    pub mod num {
        //! Full-range numeric strategies (`prop::num::u128::ANY`, ...).
        macro_rules! num_module {
            ($($m:ident / $t:ty),*) => {$(
                pub mod $m {
                    #![allow(missing_docs)]
                    use crate::arbitrary::Any;
                    use core::marker::PhantomData;
                    /// Strategy covering the full range of the type.
                    pub const ANY: Any<$t> = Any(PhantomData);
                }
            )*}
        }
        num_module!(
            u8 / u8,
            u16 / u16,
            u32 / u32,
            u64 / u64,
            u128 / u128,
            usize / usize,
            i8 / i8,
            i16 / i16,
            i32 / i32,
            i64 / i64,
            i128 / i128,
            isize / isize
        );
    }

    pub mod collection {
        //! Collection strategies.
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        /// `Vec` strategy: each value is a vector whose length is drawn
        /// uniformly from `size` and whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod array {
        //! Fixed-size array strategies.
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        macro_rules! uniform_array {
            ($($name:ident / $wrapper:ident / $n:literal),*) => {$(
                /// Strategy for `[S::Value; N]` built from one element strategy.
                pub struct $wrapper<S>(S);

                /// Array strategy: every element drawn from `element`.
                pub fn $name<S: Strategy>(element: S) -> $wrapper<S> {
                    $wrapper(element)
                }

                impl<S: Strategy> Strategy for $wrapper<S> {
                    type Value = [S::Value; $n];
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        core::array::from_fn(|_| self.0.generate(rng))
                    }
                }
            )*}
        }
        uniform_array!(
            uniform2 / UniformArray2 / 2,
            uniform4 / UniformArray4 / 4,
            uniform8 / UniformArray8 / 8,
            uniform16 / UniformArray16 / 16,
            uniform32 / UniformArray32 / 32
        );
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*` for the subset
    //! this shim implements.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Supports the subset of the real macro's grammar
/// used in this workspace: an optional `#![proptest_config(expr)]` inner
/// attribute followed by `#[test] fn name(params) { body }` items, where
/// each parameter is either `pattern in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(($cfg) ($body) [] $($params)*);
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: run the cases.
    (($cfg:expr) ($body:block) [$({$p:pat} {$s:expr})+]) => {
        $crate::test_runner::run_cases(
            $cfg,
            ($($s,)+),
            |($($p,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                ::core::result::Result::Ok(())
            },
        )
    };
    // `pattern in strategy, ...`
    (($cfg:expr) ($body:block) [$($acc:tt)*] $p:pat in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_case!(($cfg) ($body) [$($acc)* {$p} {$s}] $($rest)*)
    };
    // `pattern in strategy` (final parameter, no trailing comma)
    (($cfg:expr) ($body:block) [$($acc:tt)*] $p:pat in $s:expr) => {
        $crate::__proptest_case!(($cfg) ($body) [$($acc)* {$p} {$s}])
    };
    // `name: Type, ...` — sugar for `name in any::<Type>()`
    (($cfg:expr) ($body:block) [$($acc:tt)*] $x:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_case!(($cfg) ($body) [$($acc)* {$x} {$crate::arbitrary::any::<$t>()}] $($rest)*)
    };
    // `name: Type` (final parameter)
    (($cfg:expr) ($body:block) [$($acc:tt)*] $x:ident : $t:ty) => {
        $crate::__proptest_case!(($cfg) ($body) [$($acc)* {$x} {$crate::arbitrary::any::<$t>()}])
    };
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`\n  {}",
            stringify!($left),
            stringify!($right),
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects (skips) the current test case unless `cond` holds. The runner
/// draws a replacement case, up to a bounded number of rejections.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
